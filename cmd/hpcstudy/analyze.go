package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	containerhpc "repro"
)

// The analyze verb turns the profiles a traced run wrote (one
// <key>.profile.json per simulated cell, beside the Chrome trace) into
// attribution reports: where each cell's virtual time went per rank,
// which collectives it blocked in, the critical path that equals the
// makespan, and — with -diff — which phases explain the delta between
// two configurations. Everything renders from the profile files alone,
// so analyze never simulates and its output is byte-deterministic.

// runAnalyze drives the verb: stdout tables by default, CSV under
// -csv, an artifact tree under -o, a two-cell comparison under -diff.
func runAnalyze(w io.Writer, cfg cliConfig) error {
	if cfg.traceDir == "" {
		return usageError("analyze needs -trace DIR: the directory a traced run wrote profiles into")
	}
	if cfg.top < 0 {
		return usageError(fmt.Sprintf("-top must be ≥ 0 (0 = all segments), got %d", cfg.top))
	}
	ps, err := containerhpc.ReadProfiles(cfg.traceDir)
	if err != nil {
		return err
	}
	if cfg.diffSpec != "" {
		a, b, err := pickDiffPair(ps, cfg.diffSpec)
		if err != nil {
			return err
		}
		containerhpc.RenderProfileDiff(w, containerhpc.DiffProfiles(a, b))
		return nil
	}
	if cfg.analyzeOut != "" {
		return writeAnalysisTree(cfg.analyzeOut, ps, cfg.top)
	}
	if cfg.csv {
		containerhpc.ProfileAttributionCSV(w, ps)
		containerhpc.ProfilePhasesCSV(w, ps)
		return nil
	}
	containerhpc.RenderProfileSummary(w, ps)
	for _, p := range ps {
		containerhpc.RenderProfileRanks(w, p)
		containerhpc.RenderProfilePhases(w, p)
		containerhpc.RenderProfilePath(w, p, cfg.top)
	}
	return nil
}

// pickDiffPair resolves -diff's "A=B" argument: two label substrings,
// each selecting exactly one profiled cell.
func pickDiffPair(ps []*containerhpc.CellProfile, spec string) (a, b *containerhpc.CellProfile, err error) {
	i := strings.Index(spec, "=")
	if i <= 0 || i == len(spec)-1 {
		return nil, nil, usageError(`-diff takes "A=B": two cell-label substrings, each matching exactly one cell`)
	}
	if a, err = pickCell(ps, spec[:i]); err != nil {
		return nil, nil, err
	}
	if b, err = pickCell(ps, spec[i+1:]); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// pickCell finds the one profile whose label contains pat; anything
// but exactly one match is an error listing the candidates.
func pickCell(ps []*containerhpc.CellProfile, pat string) (*containerhpc.CellProfile, error) {
	var hits []*containerhpc.CellProfile
	for _, p := range ps {
		if strings.Contains(p.Label, pat) {
			hits = append(hits, p)
		}
	}
	switch len(hits) {
	case 1:
		return hits[0], nil
	case 0:
		return nil, fmt.Errorf("analyze: no profiled cell label contains %q; cells: %s", pat, labelList(ps))
	}
	return nil, fmt.Errorf("analyze: %q is ambiguous: matches %s", pat, labelList(hits))
}

// labelList joins profile labels for diagnostics.
func labelList(ps []*containerhpc.CellProfile) string {
	labels := make([]string, len(ps))
	for i, p := range ps {
		labels[i] = fmt.Sprintf("%q", p.Label)
	}
	return strings.Join(labels, ", ")
}

// writeAnalysisTree renders the full artifact tree under dir:
//
//	summary.txt          attribution tables (per cell and per rank)
//	attribution.csv      per-rank breakdowns, machine-readable
//	phases.csv           per-collective totals, machine-readable
//	critical-path.txt    each cell's path composition and segments
//	folded/<key>.folded  folded stacks for flamegraph tools
//
// Files are written whole from in-memory renders, so two runs over the
// same profiles produce byte-identical trees.
func writeAnalysisTree(dir string, ps []*containerhpc.CellProfile, top int) error {
	if err := os.MkdirAll(filepath.Join(dir, "folded"), 0o755); err != nil {
		return err
	}
	write := func(name string, render func(io.Writer)) error {
		var buf bytes.Buffer
		render(&buf)
		return os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644)
	}
	if err := write("summary.txt", func(w io.Writer) {
		containerhpc.RenderProfileSummary(w, ps)
		for _, p := range ps {
			containerhpc.RenderProfileRanks(w, p)
			containerhpc.RenderProfilePhases(w, p)
		}
	}); err != nil {
		return err
	}
	if err := write("attribution.csv", func(w io.Writer) { containerhpc.ProfileAttributionCSV(w, ps) }); err != nil {
		return err
	}
	if err := write("phases.csv", func(w io.Writer) { containerhpc.ProfilePhasesCSV(w, ps) }); err != nil {
		return err
	}
	if err := write("critical-path.txt", func(w io.Writer) {
		for _, p := range ps {
			containerhpc.RenderProfilePath(w, p, top)
		}
	}); err != nil {
		return err
	}
	for _, p := range ps {
		p := p
		if err := write(filepath.Join("folded", p.Key+".folded"), func(w io.Writer) {
			containerhpc.ProfileFoldedText(w, p)
		}); err != nil {
			return err
		}
	}
	return nil
}
