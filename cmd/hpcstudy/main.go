// Command hpcstudy regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	hpcstudy [-quick] [-csv] [-v] [-parallel N] [store flags] [merge] <study>
//	hpcstudy serve -cache-dir DIR -listen ADDR [-gc-interval DUR -max-bytes N -max-age DUR]
//	hpcstudy gc -cache-dir DIR [-max-bytes N] [-max-age DUR]
//
// where <study> is fig1|fig2|fig3|solutions|portability|iostudy|all
// and the store flags are -cache-dir DIR, -cache-url URL (either or
// both) plus -shard k/N.
//
// Without -quick every experiment runs at paper scale; fig3's 256-node
// point simulates 12,288 MPI ranks and takes several minutes of wall
// time. -quick trims the sweeps to a laptop-friendly subset with the
// same qualitative shapes. -csv emits machine-readable data instead of
// tables. -parallel bounds the number of concurrently simulated cells
// (default: all CPUs); results are identical at every setting.
//
// -cache-dir attaches a persistent result store: cells already in the
// store are replayed instead of simulated, and fresh cells are
// committed, so a rerun is byte-identical to the first run while
// simulating nothing. -cache-url points at a result registry
// (`hpcstudy serve`) instead, so machines with no shared filesystem
// meet in one store; given both flags, the directory becomes a local
// read-through cache in front of the registry. -shard k/N restricts
// one invocation to a deterministic 1-of-N slice of the cells, so N
// processes or machines populate one shared store without
// coordination; the merge verb then assembles the complete figure
// purely from the store, failing with the list of missing cell keys
// if any shard has not finished.
//
// serve exposes a store directory as a result registry over HTTP and
// shuts down gracefully on SIGINT/SIGTERM, committing in-flight PUTs.
// With -gc-interval it also garbage-collects the store periodically
// under the -max-bytes/-max-age policy; the gc verb runs one such
// pass directly.
//
// -v appends per-study observability lines: how cells were produced
// (simulated, replayed, failures replayed), the store traffic (hits,
// misses, puts), and the vtime kernel's scheduling counters
// (switches, ping-pong fast-slot hits, Sync fast-path hits, heap
// operations, wakes), so scheduling-path and cache regressions show
// up in CI logs instead of silently inflating wall time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	containerhpc "repro"
)

// studyNames lists every experiment in "all" order.
var studyNames = []string{"solutions", "fig1", "fig2", "fig3", "portability", "iostudy"}

// -quick sweep points. Vars rather than literals so the CLI smoke test
// can shrink them further without bypassing any of the wiring.
var (
	quickFig2Nodes = []int{2, 4, 8, 16}
	quickFig3Nodes = []int{4, 8, 16, 32, 64}
)

// cliConfig carries every flag behind the verb and study arguments.
type cliConfig struct {
	quick, csv bool
	verbose    bool // -v: per-study cache and kernel counters
	parallel   int
	cacheDir   string
	cacheURL   string // result registry base URL
	shard      string // "k/N", empty = no sharding
	merge      bool   // assemble purely from the store
	listen     string // serve: bind address
	gcInterval time.Duration
	maxBytes   int64
	maxAge     time.Duration
}

func main() {
	var cfg cliConfig
	flag.BoolVar(&cfg.quick, "quick", false, "trimmed sweeps (same shapes, minutes less wall time)")
	flag.BoolVar(&cfg.csv, "csv", false, "emit CSV instead of tables")
	flag.BoolVar(&cfg.verbose, "v", false, "report per-study cache, store, and vtime kernel counters")
	flag.IntVar(&cfg.parallel, "parallel", 0, "max concurrently simulated cells (0 = all CPUs)")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "persistent result store directory (replay hits, commit misses)")
	flag.StringVar(&cfg.cacheURL, "cache-url", "", "result registry URL; with -cache-dir, the directory becomes a local read-through cache")
	flag.StringVar(&cfg.shard, "shard", "", "compute only slice k/N of the cells into the store")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:8420", "serve: address to expose the registry on")
	flag.DurationVar(&cfg.gcInterval, "gc-interval", 0, "serve: garbage-collect the store every interval (0 = never)")
	flag.Int64Var(&cfg.maxBytes, "max-bytes", 0, "gc/serve: evict least-recently-used records past this total size (0 = unbounded)")
	flag.DurationVar(&cfg.maxAge, "max-age", 0, "gc/serve: evict records not accessed within this duration (0 = unbounded)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hpcstudy [-quick] [-csv] [-v] [-parallel N] [-cache-dir DIR] [-cache-url URL] [-shard k/N] [merge] <fig1|fig2|fig3|solutions|portability|iostudy|all>\n"+
				"       hpcstudy serve -cache-dir DIR [-listen ADDR] [-gc-interval DUR -max-bytes N -max-age DUR]\n"+
				"       hpcstudy gc -cache-dir DIR [-max-bytes N] [-max-age DUR]\n")
		flag.PrintDefaults()
	}

	// Verbs read naturally before their flags (`hpcstudy serve -cache-dir …`);
	// merge keeps its legacy flags-first position too.
	args := os.Args[1:]
	verb := ""
	if len(args) > 0 {
		switch args[0] {
		case "serve", "gc", "merge":
			verb, args = args[0], args[1:]
		}
	}
	flag.CommandLine.Parse(args)
	rest := flag.Args()
	if verb == "" && len(rest) > 0 && rest[0] == "merge" {
		verb, rest = "merge", rest[1:]
	}

	var err error
	switch verb {
	case "serve":
		if len(rest) != 0 {
			flag.Usage()
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = runServe(ctx, os.Stdout, cfg)
		stop()
	case "gc":
		if len(rest) != 0 {
			flag.Usage()
			os.Exit(2)
		}
		err = runGC(os.Stdout, cfg)
	default:
		if len(rest) != 1 {
			flag.Usage()
			os.Exit(2)
		}
		cfg.merge = verb == "merge"
		err = runStudy(os.Stdout, rest[0], cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcstudy: %v\n", err)
		var ue usageError
		var se unknownStudyError
		if errors.As(err, &ue) || errors.As(err, &se) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// openStore assembles the configured store: a directory, a registry
// client, or — with both flags — a tiered combination where the
// directory caches registry reads. Nil when no store is configured.
func openStore(cfg cliConfig) (containerhpc.Store, error) {
	switch {
	case cfg.cacheDir != "" && cfg.cacheURL != "":
		local, err := containerhpc.OpenStore(cfg.cacheDir)
		if err != nil {
			return nil, err
		}
		remote, err := containerhpc.DialStore(cfg.cacheURL)
		if err != nil {
			local.Close()
			return nil, err
		}
		return containerhpc.NewTieredStore(local, remote), nil
	case cfg.cacheDir != "":
		store, err := containerhpc.OpenStore(cfg.cacheDir)
		if err != nil {
			return nil, err
		}
		return store, nil
	case cfg.cacheURL != "":
		return containerhpc.DialStore(cfg.cacheURL)
	}
	return nil, nil
}

// runServe exposes -cache-dir as a result registry until ctx is
// cancelled (the CLI wires SIGINT/SIGTERM), then shuts down
// gracefully with in-flight PUTs committed.
func runServe(ctx context.Context, w io.Writer, cfg cliConfig) error {
	if cfg.cacheDir == "" {
		return usageError("serve needs -cache-dir: the registry serves a directory store")
	}
	if cfg.cacheURL != "" {
		return usageError("serve exposes -cache-dir; it cannot chain to another registry via -cache-url")
	}
	gcPolicy := containerhpc.GCPolicy{MaxBytes: cfg.maxBytes, MaxAge: cfg.maxAge}
	if cfg.gcInterval > 0 && !gcPolicy.Bounded() {
		return usageError("-gc-interval needs a bound: -max-bytes and/or -max-age (an unbounded policy collects nothing)")
	}
	store, err := containerhpc.OpenStore(cfg.cacheDir)
	if err != nil {
		return err
	}
	defer store.Close()
	srv := containerhpc.NewRegistryServer(store, containerhpc.RegistryServerOptions{
		GCInterval: cfg.gcInterval,
		GC:         gcPolicy,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	})
	return srv.ListenAndServe(ctx, cfg.listen)
}

// runGC runs one eviction pass over -cache-dir.
func runGC(w io.Writer, cfg cliConfig) error {
	if cfg.cacheDir == "" {
		return usageError("gc needs -cache-dir: it collects a directory store")
	}
	pol := containerhpc.GCPolicy{MaxBytes: cfg.maxBytes, MaxAge: cfg.maxAge}
	if !pol.Bounded() {
		return usageError("gc needs a bound: -max-bytes and/or -max-age")
	}
	store, err := containerhpc.OpenStore(cfg.cacheDir)
	if err != nil {
		return err
	}
	defer store.Close()
	rep, err := store.GC(time.Now(), pol)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", rep)
	return nil
}

// usageError reports CLI misuse (invalid flag value or combination);
// main answers it with the usage text and exit code 2.
type usageError string

func (e usageError) Error() string { return string(e) }

// unknownStudyError reports a study name outside the known set.
type unknownStudyError string

func (e unknownStudyError) Error() string { return fmt.Sprintf("unknown study %q", string(e)) }

// runStudy regenerates one study (or "all") into w — the whole CLI
// behind flag parsing, so tests can drive it directly.
func runStudy(w io.Writer, which string, cfg cliConfig) error {
	if cfg.parallel < 0 {
		return usageError(fmt.Sprintf("-parallel must be ≥ 0 (0 = all CPUs), got %d", cfg.parallel))
	}
	var shard containerhpc.Shard
	if cfg.shard != "" {
		if cfg.cacheDir == "" && cfg.cacheURL == "" {
			return usageError("-shard needs -cache-dir or -cache-url: shards meet in a shared result store")
		}
		if cfg.merge {
			return usageError("merge assembles from the store; it cannot be sharded")
		}
		var err error
		if shard, err = containerhpc.ParseShard(cfg.shard); err != nil {
			return usageError(err.Error())
		}
	}
	if cfg.merge && cfg.cacheDir == "" && cfg.cacheURL == "" {
		return usageError("merge needs -cache-dir or -cache-url: it assembles figures from a populated store")
	}

	stats := &containerhpc.SweepStats{}
	opt := containerhpc.Options{Parallelism: cfg.parallel, Stats: stats}
	store, err := openStore(cfg)
	if err != nil {
		return err
	}
	if store != nil {
		defer store.Close()
		opt.Store, opt.Shard, opt.FromStore = store, shard, cfg.merge
	}

	jobs := map[string]func(io.Writer) error{
		"fig1":        func(w io.Writer) error { return fig1(w, opt, cfg) },
		"fig2":        func(w io.Writer) error { return fig2(w, opt, cfg) },
		"fig3":        func(w io.Writer) error { return fig3(w, opt, cfg) },
		"solutions":   func(w io.Writer) error { return solutions(w, opt) },
		"portability": func(w io.Writer) error { return portability(w, opt) },
		"iostudy":     func(w io.Writer) error { return iostudy(w, opt) },
	}
	run := func(name string, f func(io.Writer) error) error {
		start := time.Now()
		hits0, comp0, neg0 := stats.Hits.Load(), stats.Computed.Load(), stats.NegHits.Load()
		kern0 := stats.Kernel()
		var st0 containerhpc.StoreStats
		if opt.Store != nil {
			st0 = opt.Store.Stats()
		}
		verbose := func() {
			if !cfg.verbose {
				return
			}
			k := stats.Kernel().Sub(kern0)
			fmt.Fprintf(w, "  %s cells: %d simulated, %d replayed, %d failures replayed\n",
				name, stats.Computed.Load()-comp0, stats.Hits.Load()-hits0, stats.NegHits.Load()-neg0)
			if opt.Store != nil {
				// The store's own traffic, not the sweep's view of it:
				// against a registry these are network operations, and
				// retries flag a flaky link.
				st := opt.Store.Stats()
				fmt.Fprintf(w, "  %s store: %d hits, %d misses, %d puts, %d failure records, %d negative hits, %d retries\n",
					name, st.Hits-st0.Hits, st.Misses()-st0.Misses(), st.Puts-st0.Puts,
					st.PutErrors-st0.PutErrors, st.NegHits-st0.NegHits, st.Retries-st0.Retries)
			}
			fmt.Fprintf(w, "  %s kernel: %d switches (%d ping-pong), %d sync fast-path, %d heap ops, %d wakes (%d batched flushes)\n",
				name, k.Switches, k.PingPong, k.SyncFast, k.HeapOps, k.Wakes, k.WakeBatches)
		}
		err := f(w)
		var miss *containerhpc.MissingCellsError
		if err != nil && shard.Active() && errors.As(err, &miss) {
			// A populate shard finished its slice; the rest belongs to
			// other shards and is not a failure.
			fmt.Fprintf(w, "%s: shard %s done: %d cells simulated, %d replayed, %d left to other shards\n\n",
				name, shard, stats.Computed.Load()-comp0, stats.Hits.Load()-hits0, len(miss.Cells))
			verbose()
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		verbose()
		fmt.Fprintf(w, "  (%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if which == "all" {
		for _, name := range studyNames {
			if err := run(name, jobs[name]); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := jobs[which]
	if !ok {
		return unknownStudyError(which)
	}
	return run(which, f)
}

func fig1(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		c := containerhpc.ArteryCFDLenox()
		c.SimSteps = 1
		opt.Case = c
	}
	res, err := containerhpc.Fig1(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig2(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		c := containerhpc.ArteryCFDCTEPower()
		c.SimSteps = 1
		opt.Case = c
		opt.NodePoints = quickFig2Nodes
	}
	res, err := containerhpc.Fig2(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig3(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		opt.NodePoints = quickFig3Nodes
	}
	res, err := containerhpc.Fig3(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
		return nil
	}
	res.Render(w)
	fmt.Fprintln(w)
	res.RenderChart(w)
	return nil
}

func solutions(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.Solutions(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func portability(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.Portability(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func iostudy(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.IOStudy(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
