// Command hpcstudy regenerates the paper's evaluation artifacts and
// runs user-authored scenario studies.
//
// Usage:
//
//	hpcstudy [-quick] [-csv] [-v] [-parallel N] [store flags] [merge] <study>
//	hpcstudy run [-list] [flags] <spec.json>
//	hpcstudy validate <spec.json>
//	hpcstudy serve -cache-dir DIR -listen ADDR [-gc-interval DUR -max-bytes N -max-age DUR] [-pprof ADDR]
//	hpcstudy analyze -trace DIR [-o OUTDIR] [-diff "A=B"] [-top N] [-csv]
//	hpcstudy fleetlog [-chrome FILE] [-csv] [-diff DIRB] <journal-dir>
//	hpcstudy gc -cache-dir DIR [-max-bytes N] [-max-age DUR]
//	hpcstudy help [verb]
//
// where <study> is fig1|fig2|fig3|solutions|portability|iostudy|all
// and the store flags are -cache-dir DIR, -cache-url URL (either or
// both) plus -shard k/N.
//
// run compiles a declarative JSON scenario spec (see
// examples/scenarios and the README's "Custom scenarios" section)
// and executes it through the same sweep engine as the built-in
// studies, so every store flag — caching, registry URL, sharding,
// merge — applies unchanged; a spec argument also works wherever a
// study name does ("hpcstudy merge spec.json"). validate checks a
// spec and reports its cell count without simulating, and run -list
// prints every compiled cell with its store key.
//
// Without -quick every experiment runs at paper scale; fig3's 256-node
// point simulates 12,288 MPI ranks and takes several minutes of wall
// time. -quick trims the sweeps to a laptop-friendly subset with the
// same qualitative shapes. -csv emits machine-readable data instead of
// tables. -parallel bounds the number of concurrently simulated cells
// (default: all CPUs); results are identical at every setting.
//
// -cache-dir attaches a persistent result store: cells already in the
// store are replayed instead of simulated, and fresh cells are
// committed, so a rerun is byte-identical to the first run while
// simulating nothing. -cache-url points at a result registry
// (`hpcstudy serve`) instead, so machines with no shared filesystem
// meet in one store; given both flags, the directory becomes a local
// read-through cache in front of the registry. -shard k/N restricts
// one invocation to a deterministic 1-of-N slice of the cells, so N
// processes or machines populate one shared store without
// coordination; the merge verb then assembles the complete figure
// purely from the store, failing with the list of missing cell keys
// if any shard has not finished.
//
// serve exposes a store directory as a result registry over HTTP and
// shuts down gracefully on SIGINT/SIGTERM, committing in-flight PUTs.
// With -gc-interval it also garbage-collects the store periodically
// under the -max-bytes/-max-age policy; the gc verb runs one such
// pass directly.
//
// -v appends per-study observability lines: how cells were produced
// (simulated, replayed, failures replayed), the store traffic (hits,
// misses, puts), and the vtime kernel's scheduling counters
// (switches, ping-pong fast-slot hits, Sync fast-path hits, heap
// operations, wakes), so scheduling-path and cache regressions show
// up in CI logs instead of silently inflating wall time.
//
// -trace DIR writes one Chrome Trace Event JSON file per simulated
// cell (named by the cell's store key) recording the execution in
// virtual time — kernel scheduling, point-to-point messages, and
// collective phases — loadable in chrome://tracing or Perfetto.
// Traces are deterministic and purely observational: figure bytes are
// identical with or without them. A traced run also writes one
// attribution profile per cell; the analyze verb turns those into
// per-rank time-attribution tables (compute vs point-to-point,
// collective, and resource waits — summing exactly to each rank's
// virtual time), critical-path reports whose length equals the cell
// makespan, folded stacks for flamegraph tools, and -diff "A=B"
// comparisons attributing the makespan delta between two cells to
// specific phases. -progress streams cells-done/rate/ETA lines to
// stderr as a sweep runs.
//
// -fleetlog DIR makes serve and sweep append wall-clock fleet-trace
// journals (one <proc>.fleetlog.jsonl per process: claims, leases,
// heartbeats, store GETs/PUTs, cell runs, with trace/span IDs
// propagated across the wire). The fleetlog verb merges a directory of
// such journals from N processes, aligns their clocks via the
// request/response edges, and prints a per-worker wall-clock
// attribution table (simulate / wire / backoff / idle, tiling each
// worker's observed span exactly); -chrome FILE additionally writes
// the merged timeline as Chrome Trace Event JSON, and -diff DIRB
// compares two runs' attributions. The registry server exposes
// its own metrics (request counts and latencies, store hits/misses,
// GC evictions) on GET /v1/metrics in Prometheus text format, and
// serve -pprof ADDR opens an opt-in net/http/pprof listener. See the
// README's "Observability" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	containerhpc "repro"
)

// studyNames lists every experiment in "all" order.
var studyNames = []string{"solutions", "fig1", "fig2", "fig3", "portability", "iostudy"}

// -quick sweep points. Vars rather than literals so the CLI smoke test
// can shrink them further without bypassing any of the wiring.
var (
	quickFig2Nodes = []int{2, 4, 8, 16}
	quickFig3Nodes = []int{4, 8, 16, 32, 64}
)

// cliConfig carries every flag behind the verb and study arguments.
type cliConfig struct {
	quick, csv bool
	verbose    bool // -v: per-study cache and kernel counters
	parallel   int
	cacheDir   string
	cacheURL   string // result registry base URL
	shard      string // "k/N", empty = no sharding
	merge      bool   // assemble purely from the store
	list       bool   // run: enumerate cells without running
	scenario   bool   // run verb: the argument must be a spec file
	listen     string // serve: bind address
	gcInterval time.Duration
	maxBytes   int64
	maxAge     time.Duration
	traceDir   string // write per-cell Chrome Trace JSON here
	progress   bool   // report sweep progress to stderr
	pprofAddr  string // serve: opt-in net/http/pprof address
	analyzeOut string // analyze: write the artifact tree here
	diffSpec   string // analyze: "A=B" label substrings to compare; fleetlog: run-B journal dir
	top        int    // analyze: longest path segments to list
	fleetlog   string // serve/sweep: append fleet-trace journals here
	chromeOut  string // fleetlog: write the merged Chrome trace here

	// Coordinated sweeps (serve -sweep hands out leases on /v1/work;
	// the sweep verb pulls them).
	sweepStudy  string        // serve: study/spec to coordinate
	leaseTTL    time.Duration // serve: lease expiry without a heartbeat
	leaseBatch  int           // serve: cells per lease
	coordinator string        // sweep: coordinator registry URL
	workerName  string        // sweep: display name in coordinator logs
}

// verbSummaries drives the top-level usage text, in display order.
var verbSummaries = [][2]string{
	{"<study>", "regenerate a built-in study: fig1|fig2|fig3|solutions|portability|iostudy|all"},
	{"run <spec.json>", "compile and run a declarative scenario spec (examples/scenarios)"},
	{"validate <spec.json>", "check a scenario spec and report its cells without running"},
	{"merge <study|spec>", "assemble output purely from the result store"},
	{"serve", "expose a -cache-dir store as a result registry over HTTP"},
	{"sweep <study|spec>", "run a worker pulling leased cell batches from a coordinator (serve -sweep)"},
	{"analyze", "attribute a traced run's virtual time: per-rank tables, critical path, A-vs-B diff"},
	{"fleetlog", "merge -fleetlog journals into one wall-clock timeline and attribution table"},
	{"gc", "evict store records by total size and/or last access"},
	{"help [verb]", "print this summary, or one verb's flags"},
}

// verbFlags names the flags each verb understands, so per-verb help
// shows only what applies.
var verbFlags = map[string][]string{
	// "study" itself is the top-level summary (printUsage's first
	// branch), which prints studyFamilyFlags below.
	"run":      {"list", "csv", "v", "parallel", "trace", "progress", "cache-dir", "cache-url", "shard"},
	"merge":    {"quick", "csv", "v", "parallel", "progress", "cache-dir", "cache-url"},
	"validate": {},
	"serve":    {"cache-dir", "listen", "gc-interval", "max-bytes", "max-age", "pprof", "sweep", "lease-ttl", "lease-batch", "quick", "fleetlog"},
	"sweep":    {"coordinator", "worker", "quick", "v", "parallel", "cache-dir", "trace", "progress", "fleetlog"},
	"analyze":  {"trace", "o", "diff", "top", "csv"},
	"fleetlog": {"chrome", "csv", "diff"},
	"gc":       {"cache-dir", "max-bytes", "max-age"},
}

// studyFamilyFlags is the union the top-level summary prints: every
// flag of the study/run/merge family, -quick included.
var studyFamilyFlags = []string{"quick", "list", "csv", "v", "parallel", "trace", "progress", "cache-dir", "cache-url", "shard"}

// verbSynopses is the one-line usage form of each verb.
var verbSynopses = map[string]string{
	"study":    "hpcstudy [flags] <fig1|fig2|fig3|solutions|portability|iostudy|all>",
	"run":      "hpcstudy run [flags] <spec.json>",
	"validate": "hpcstudy validate <spec.json>",
	"merge":    "hpcstudy merge [flags] <study|spec.json>",
	"serve":    "hpcstudy serve -cache-dir DIR [-listen ADDR] [-sweep STUDY -lease-ttl DUR -lease-batch N] [-gc-interval DUR -max-bytes N -max-age DUR] [-pprof ADDR]",
	"sweep":    "hpcstudy sweep -coordinator URL [-worker NAME] [flags] <fig1|fig2|spec.json>",
	"analyze":  "hpcstudy analyze -trace DIR [-o OUTDIR] [-diff \"A=B\"] [-top N] [-csv]",
	"fleetlog": "hpcstudy fleetlog [-chrome FILE] [-csv] [-diff DIRB] <journal-dir>",
	"gc":       "hpcstudy gc -cache-dir DIR [-max-bytes N] [-max-age DUR]",
}

// printVerbFlags prints the named flags in declaration style.
func printVerbFlags(w io.Writer, names []string) {
	for _, n := range names {
		f := flag.CommandLine.Lookup(n)
		if f == nil {
			continue
		}
		fmt.Fprintf(w, "  -%-12s %s\n", f.Name, f.Usage)
	}
}

// printUsage writes the usage text: one verb's synopsis and flags, or
// the full verb summary when verb is empty or unknown.
func printUsage(w io.Writer, verb string) {
	if verb == "study" || verb == "" {
		fmt.Fprintf(w, "usage: %s\n", verbSynopses["study"])
		fmt.Fprintf(w, "\nverbs:\n")
		for _, v := range verbSummaries {
			fmt.Fprintf(w, "  %-22s %s\n", v[0], v[1])
		}
		fmt.Fprintf(w, "\nrun `hpcstudy help <verb>` (or `hpcstudy <verb> -h`) for per-verb flags.\n")
		fmt.Fprintf(w, "\nthe determinism and kernel invariants behind every figure are machine-enforced:\nbuild ./cmd/repolint and run `go vet -vettool=$(pwd)/repolint ./...` (CI gates on\nit) before touching kernel, sweep, or wire/store code.\n")
		fmt.Fprintf(w, "\nstudy/run/merge flags:\n")
		printVerbFlags(w, studyFamilyFlags)
		return
	}
	syn, ok := verbSynopses[verb]
	if !ok {
		printUsage(w, "")
		return
	}
	fmt.Fprintf(w, "usage: %s\n", syn)
	if names := verbFlags[verb]; len(names) > 0 {
		fmt.Fprintf(w, "\nflags:\n")
		printVerbFlags(w, names)
	}
}

// cliFlags receives the parsed command line. Registration happens at
// init so per-verb help can introspect flag.CommandLine even when
// main never runs (tests drive printUsage directly); the test binary
// registers its own -test.* flags alongside, which never collide.
var cliFlags cliConfig

func init() {
	flag.BoolVar(&cliFlags.quick, "quick", false, "trimmed sweeps (same shapes, minutes less wall time)")
	flag.BoolVar(&cliFlags.csv, "csv", false, "emit CSV instead of tables")
	flag.BoolVar(&cliFlags.verbose, "v", false, "report per-study cache, store, and vtime kernel counters")
	flag.IntVar(&cliFlags.parallel, "parallel", 0, "max concurrently simulated cells (0 = all CPUs)")
	flag.StringVar(&cliFlags.cacheDir, "cache-dir", "", "persistent result store directory (replay hits, commit misses)")
	flag.StringVar(&cliFlags.cacheURL, "cache-url", "", "result registry URL; with -cache-dir, the directory becomes a local read-through cache")
	flag.StringVar(&cliFlags.shard, "shard", "", "compute only slice k/N of the cells into the store")
	flag.BoolVar(&cliFlags.list, "list", false, "run: print the compiled cells (store key and label) without running")
	flag.StringVar(&cliFlags.listen, "listen", "127.0.0.1:8420", "serve: address to expose the registry on")
	flag.DurationVar(&cliFlags.gcInterval, "gc-interval", 0, "serve: garbage-collect the store every interval (0 = never)")
	flag.Int64Var(&cliFlags.maxBytes, "max-bytes", 0, "gc/serve: evict least-recently-used records past this total size (0 = unbounded)")
	flag.DurationVar(&cliFlags.maxAge, "max-age", 0, "gc/serve: evict records not accessed within this duration (0 = unbounded)")
	flag.StringVar(&cliFlags.traceDir, "trace", "", "write one Chrome Trace Event JSON per simulated cell into this directory")
	flag.BoolVar(&cliFlags.progress, "progress", false, "report sweep progress (cells done, rate, ETA) to stderr")
	flag.StringVar(&cliFlags.pprofAddr, "pprof", "", "serve: expose net/http/pprof on this address (off unless set)")
	flag.StringVar(&cliFlags.sweepStudy, "sweep", "", "serve: coordinate this study (fig1|fig2|spec.json) over the /v1/work lease API")
	flag.DurationVar(&cliFlags.leaseTTL, "lease-ttl", 30*time.Second, "serve: revoke a lease not heartbeated within this duration")
	flag.IntVar(&cliFlags.leaseBatch, "lease-batch", 4, "serve: cells per leased batch")
	flag.StringVar(&cliFlags.coordinator, "coordinator", "", "sweep: coordinator registry URL (hpcstudy serve -sweep)")
	flag.StringVar(&cliFlags.workerName, "worker", "", "sweep: worker name in coordinator logs (default host:pid)")
	flag.StringVar(&cliFlags.analyzeOut, "o", "", "analyze: write summary/CSV/critical-path/folded artifacts into this directory")
	flag.StringVar(&cliFlags.diffSpec, "diff", "", "analyze: compare two cells (\"A=B\", label substrings); fleetlog: a second journal dir to compare against")
	flag.IntVar(&cliFlags.top, "top", 10, "analyze: longest critical-path segments to list (0 = all)")
	flag.StringVar(&cliFlags.fleetlog, "fleetlog", "", "serve/sweep: append wall-clock fleet-trace journals into this directory")
	flag.StringVar(&cliFlags.chromeOut, "chrome", "", "fleetlog: write the merged timeline as Chrome Trace Event JSON to this file (\"-\" = stdout)")
}

func main() {
	// Verbs read naturally before their flags (`hpcstudy serve -cache-dir …`);
	// merge & co. keep their legacy flags-first position too.
	args := os.Args[1:]
	verb := ""
	if len(args) > 0 {
		switch args[0] {
		case "serve", "gc", "merge", "run", "validate", "sweep", "analyze", "fleetlog", "help":
			verb, args = args[0], args[1:]
		}
	}
	flag.Usage = func() { printUsage(flag.CommandLine.Output(), verb) }
	flag.CommandLine.Parse(args)
	cfg := cliFlags
	rest := flag.Args()
	if verb == "" && len(rest) > 0 {
		switch rest[0] {
		case "merge", "run", "validate", "sweep", "analyze", "fleetlog", "help":
			verb, rest = rest[0], rest[1:]
		}
	}

	var err error
	switch verb {
	case "serve":
		if len(rest) != 0 {
			flag.Usage()
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = runServe(ctx, os.Stdout, cfg)
		stop()
	case "gc":
		if len(rest) != 0 {
			flag.Usage()
			os.Exit(2)
		}
		err = runGC(os.Stdout, cfg)
	case "help":
		target := ""
		if len(rest) > 1 {
			flag.Usage()
			os.Exit(2)
		}
		if len(rest) == 1 {
			target = rest[0]
		}
		printUsage(os.Stdout, target)
	case "validate":
		if len(rest) != 1 {
			flag.Usage()
			os.Exit(2)
		}
		err = runValidate(os.Stdout, rest[0])
	case "sweep":
		if len(rest) != 1 {
			flag.Usage()
			os.Exit(2)
		}
		err = runSweep(os.Stdout, rest[0], cfg)
	case "analyze":
		if len(rest) != 0 {
			flag.Usage()
			os.Exit(2)
		}
		err = runAnalyze(os.Stdout, cfg)
	case "fleetlog":
		if len(rest) != 1 {
			flag.Usage()
			os.Exit(2)
		}
		err = runFleetlog(os.Stdout, rest[0], cfg)
	default:
		if len(rest) != 1 {
			flag.Usage()
			os.Exit(2)
		}
		cfg.merge = verb == "merge"
		cfg.scenario = verb == "run"
		err = runStudy(os.Stdout, rest[0], cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcstudy: %v\n", err)
		var ue usageError
		var se unknownStudyError
		if errors.As(err, &ue) || errors.As(err, &se) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// openStore assembles the configured store: a directory, a registry
// client, or — with both flags — a tiered combination where the
// directory caches registry reads. Nil when no store is configured.
// Under -v, the registry client logs every retried request to stderr
// — a retry that eventually succeeds is otherwise invisible, leaving
// a flaky link undiagnosed (the count also lands in the store line).
func openStore(cfg cliConfig) (containerhpc.Store, error) {
	dial := func() (*containerhpc.RegistryClient, error) {
		opt := containerhpc.RegistryClientOptions{}
		if cfg.verbose {
			opt.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
		return containerhpc.DialStoreWith(cfg.cacheURL, opt)
	}
	switch {
	case cfg.cacheDir != "" && cfg.cacheURL != "":
		local, err := containerhpc.OpenStore(cfg.cacheDir)
		if err != nil {
			return nil, err
		}
		remote, err := dial()
		if err != nil {
			local.Close()
			return nil, err
		}
		return containerhpc.NewTieredStore(local, remote), nil
	case cfg.cacheDir != "":
		store, err := containerhpc.OpenStore(cfg.cacheDir)
		if err != nil {
			return nil, err
		}
		return store, nil
	case cfg.cacheURL != "":
		return dial()
	}
	return nil, nil
}

// runServe exposes -cache-dir as a result registry until ctx is
// cancelled (the CLI wires SIGINT/SIGTERM), then shuts down
// gracefully with in-flight PUTs committed.
func runServe(ctx context.Context, w io.Writer, cfg cliConfig) error {
	if cfg.cacheDir == "" {
		return usageError("serve needs -cache-dir: the registry serves a directory store")
	}
	if cfg.cacheURL != "" {
		return usageError("serve exposes -cache-dir; it cannot chain to another registry via -cache-url")
	}
	gcPolicy := containerhpc.GCPolicy{MaxBytes: cfg.maxBytes, MaxAge: cfg.maxAge}
	if cfg.gcInterval > 0 && !gcPolicy.Bounded() {
		return usageError("-gc-interval needs a bound: -max-bytes and/or -max-age (an unbounded policy collects nothing)")
	}
	store, err := containerhpc.OpenStore(cfg.cacheDir)
	if err != nil {
		return err
	}
	defer store.Close()
	if cfg.pprofAddr != "" {
		// Opt-in profiling endpoint on its own address, so profiling
		// traffic never mixes with (or is exposed on) the registry port.
		// The listener lives for the process; serve exits by signal.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(w, "pprof: listening on %s\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, mux); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	srvOpt := containerhpc.RegistryServerOptions{
		GCInterval: cfg.gcInterval,
		GC:         gcPolicy,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
	}
	var journal *containerhpc.FleetJournal
	if cfg.fleetlog != "" {
		journal, err = containerhpc.OpenFleetJournal(cfg.fleetlog, "coordinator")
		if err != nil {
			return err
		}
		defer journal.Close()
		srvOpt.Journal = journal
	}
	if cfg.sweepStudy != "" {
		// Coordinator mode: enumerate the study against the store so
		// already-committed cells are never issued (a restart resumes
		// with exactly the un-committed remainder), then hand out the
		// rest as leased batches on /v1/work.
		work, err := buildWorkQueue(w, store, cfg, journal)
		if err != nil {
			return err
		}
		srvOpt.Work = work
	}
	srv := containerhpc.NewRegistryServer(store, srvOpt)
	return srv.ListenAndServe(ctx, cfg.listen)
}

// runGC runs one eviction pass over -cache-dir.
func runGC(w io.Writer, cfg cliConfig) error {
	if cfg.cacheDir == "" {
		return usageError("gc needs -cache-dir: it collects a directory store")
	}
	pol := containerhpc.GCPolicy{MaxBytes: cfg.maxBytes, MaxAge: cfg.maxAge}
	if !pol.Bounded() {
		return usageError("gc needs a bound: -max-bytes and/or -max-age")
	}
	store, err := containerhpc.OpenStore(cfg.cacheDir)
	if err != nil {
		return err
	}
	defer store.Close()
	rep, err := store.GC(time.Now(), pol)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", rep)
	return nil
}

// usageError reports CLI misuse (invalid flag value or combination);
// main answers it with the usage text and exit code 2.
type usageError string

func (e usageError) Error() string { return string(e) }

// unknownStudyError reports a study name outside the known set.
type unknownStudyError string

func (e unknownStudyError) Error() string { return fmt.Sprintf("unknown study %q", string(e)) }

// looksLikeSpec reports whether a study argument is a scenario spec
// path rather than a built-in study name, so every study-taking verb
// ("hpcstudy merge spec.json") accepts specs without a separate flag.
func looksLikeSpec(s string) bool {
	if strings.HasSuffix(s, ".json") || strings.ContainsRune(s, os.PathSeparator) {
		return true
	}
	// Extension-less spec files are accepted, but only regular files:
	// a typo that happens to match a directory should stay an
	// "unknown study" diagnostic, not a JSON decode failure.
	info, err := os.Stat(s)
	return err == nil && info.Mode().IsRegular()
}

// runValidate compiles a spec and reports its shape without running.
func runValidate(w io.Writer, path string) error {
	st, err := containerhpc.LoadScenario(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: ok: %s\n", path, st.Shape())
	return nil
}

// listCells prints every compiled cell with its store key — the
// operator's view of what a spec will sweep and which fingerprints to
// look for in a registry.
func listCells(w io.Writer, st *containerhpc.Scenario) error {
	cells, keys := st.Cells(), st.Keys()
	for i := range cells {
		fmt.Fprintf(w, "%s  %s\n", keys[i], cells[i].Label)
	}
	fmt.Fprintf(w, "%s: %s\n", st.Name(), st.Shape())
	return nil
}

// runStudy regenerates one study (or "all"), or a scenario spec given
// by path, into w — the whole CLI behind flag parsing, so tests can
// drive it directly.
func runStudy(w io.Writer, which string, cfg cliConfig) error {
	if cfg.parallel < 0 {
		return usageError(fmt.Sprintf("-parallel must be ≥ 0 (0 = all CPUs), got %d", cfg.parallel))
	}

	// Resolve the target before touching any store: a scenario path
	// compiles here (validation errors surface with no side effects),
	// and -list needs nothing but the compiled cells.
	builtin := which == "all"
	for _, n := range studyNames {
		builtin = builtin || which == n
	}
	var study *containerhpc.Scenario
	if !builtin || cfg.scenario {
		if !cfg.scenario && !looksLikeSpec(which) {
			return unknownStudyError(which)
		}
		if cfg.quick {
			return usageError("-quick trims the built-in studies; size a scenario via its spec (case.sim_steps)")
		}
		var err error
		if study, err = containerhpc.LoadScenario(which); err != nil {
			return err
		}
		if cfg.list {
			return listCells(w, study)
		}
	} else if cfg.list {
		return usageError("-list prints a scenario spec's cells; give the run verb a spec file")
	}

	var shard containerhpc.Shard
	if cfg.shard != "" {
		if cfg.cacheDir == "" && cfg.cacheURL == "" {
			return usageError("-shard needs -cache-dir or -cache-url: shards meet in a shared result store")
		}
		if cfg.merge {
			return usageError("merge assembles from the store; it cannot be sharded")
		}
		var err error
		if shard, err = containerhpc.ParseShard(cfg.shard); err != nil {
			return usageError(err.Error())
		}
	}
	if cfg.merge && cfg.cacheDir == "" && cfg.cacheURL == "" {
		return usageError("merge needs -cache-dir or -cache-url: it assembles figures from a populated store")
	}

	stats := &containerhpc.SweepStats{}
	opt := containerhpc.Options{Parallelism: cfg.parallel, Stats: stats, TraceDir: cfg.traceDir}
	if cfg.progress {
		// Progress is wall-time telemetry (rate, ETA), so it goes to
		// stderr: stdout stays the deterministic figure bytes.
		prog := containerhpc.NewProgress(os.Stderr)
		opt.Progress = func(ev containerhpc.ProgressEvent) { prog.Event(ev.Done, ev.Total, ev.Cached) }
	}
	store, err := openStore(cfg)
	if err != nil {
		return err
	}
	if store != nil {
		defer store.Close()
		opt.Store, opt.Shard, opt.FromStore = store, shard, cfg.merge
	}
	// One metrics registry per invocation: every study's -v lines render
	// from it (RecordStudy folds the per-study deltas in; RenderStudy
	// prints them back), so the CLI and the scrapeable surfaces share
	// one model instead of three parallel stats structs.
	metrics := containerhpc.NewMetricsRegistry()

	jobs := map[string]func(io.Writer) error{
		"fig1":        func(w io.Writer) error { return fig1(w, opt, cfg) },
		"fig2":        func(w io.Writer) error { return fig2(w, opt, cfg) },
		"fig3":        func(w io.Writer) error { return fig3(w, opt, cfg) },
		"solutions":   func(w io.Writer) error { return solutions(w, opt) },
		"portability": func(w io.Writer) error { return portability(w, opt) },
		"iostudy":     func(w io.Writer) error { return iostudy(w, opt) },
	}
	run := func(name string, f func(io.Writer) error) error {
		start := time.Now()
		hits0, comp0, neg0 := stats.Hits.Load(), stats.Computed.Load(), stats.NegHits.Load()
		kern0 := stats.Kernel()
		stats.ResetAdmission() // min-gauge: fresh window per study
		var st0 containerhpc.StoreStats
		if opt.Store != nil {
			st0 = opt.Store.Stats()
		}
		verbose := func() {
			if !cfg.verbose {
				return
			}
			// Fold this study's deltas into the metrics registry, then
			// render the classic -v lines from it. The admission gauge
			// was reset at this study's start, so a clamp belongs to this
			// study — an earlier study's clamp (fig3 under "all") is
			// never re-attributed. Anyone changing what the kernel
			// counters measure must keep `go vet -vettool` with
			// cmd/repolint green — the kernelsafe analyzer is what
			// guarantees these numbers stay meaningful.
			sample := containerhpc.CellsSample{
				Simulated:        stats.Computed.Load() - comp0,
				Replayed:         stats.Hits.Load() - hits0,
				FailuresReplayed: stats.NegHits.Load() - neg0,
				Kernel:           stats.Kernel().Sub(kern0),
			}
			sample.AdmissionRequested, sample.AdmissionAdmitted = stats.Admission()
			if opt.Store != nil {
				// The store's own traffic, not the sweep's view of it:
				// against a registry these are network operations, and
				// retries flag a flaky link.
				st := opt.Store.Stats()
				sample.Store = &containerhpc.StoreStats{
					Lookups:       st.Lookups - st0.Lookups,
					Hits:          st.Hits - st0.Hits,
					NegHits:       st.NegHits - st0.NegHits,
					Puts:          st.Puts - st0.Puts,
					PutErrors:     st.PutErrors - st0.PutErrors,
					Retries:       st.Retries - st0.Retries,
					PrefetchSkips: st.PrefetchSkips - st0.PrefetchSkips,
				}
			}
			containerhpc.RecordStudy(metrics, name, sample)
			containerhpc.RenderStudy(w, metrics, name, containerhpc.RankBudget)
		}
		err := f(w)
		var miss *containerhpc.MissingCellsError
		if err != nil && shard.Active() && errors.As(err, &miss) {
			// A populate shard finished its slice; the rest belongs to
			// other shards and is not a failure.
			fmt.Fprintf(w, "%s: shard %s done: %d cells simulated, %d replayed, %d left to other shards\n\n",
				name, shard, stats.Computed.Load()-comp0, stats.Hits.Load()-hits0, len(miss.Cells))
			verbose()
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		verbose()
		fmt.Fprintf(w, "  (%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if study != nil {
		return run(study.Name(), func(w io.Writer) error {
			return scenarioJob(w, study, opt, cfg)
		})
	}
	if which == "all" {
		for _, name := range studyNames {
			if err := run(name, jobs[name]); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := jobs[which]
	if !ok {
		return unknownStudyError(which)
	}
	return run(which, f)
}

// scenarioJob runs one compiled scenario through the same options
// every built-in study gets.
func scenarioJob(w io.Writer, st *containerhpc.Scenario, opt containerhpc.Options, cfg cliConfig) error {
	res, err := st.Run(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig1(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		c := containerhpc.ArteryCFDLenox()
		c.SimSteps = 1
		opt.Case = c
	}
	res, err := containerhpc.Fig1(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig2(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		c := containerhpc.ArteryCFDCTEPower()
		c.SimSteps = 1
		opt.Case = c
		opt.NodePoints = quickFig2Nodes
	}
	res, err := containerhpc.Fig2(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig3(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		opt.NodePoints = quickFig3Nodes
	}
	res, err := containerhpc.Fig3(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
		return nil
	}
	res.Render(w)
	fmt.Fprintln(w)
	res.RenderChart(w)
	return nil
}

func solutions(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.Solutions(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func portability(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.Portability(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func iostudy(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.IOStudy(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
