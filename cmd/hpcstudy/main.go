// Command hpcstudy regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	hpcstudy [-quick] [-csv] [-v] [-parallel N] [-cache-dir DIR [-shard k/N]] <study>
//	hpcstudy -cache-dir DIR [flags] merge <study>
//
// where <study> is fig1|fig2|fig3|solutions|portability|iostudy|all.
//
// Without -quick every experiment runs at paper scale; fig3's 256-node
// point simulates 12,288 MPI ranks and takes several minutes of wall
// time. -quick trims the sweeps to a laptop-friendly subset with the
// same qualitative shapes. -csv emits machine-readable data instead of
// tables. -parallel bounds the number of concurrently simulated cells
// (default: all CPUs); results are identical at every setting.
//
// -cache-dir attaches a persistent result store: cells already in the
// store are replayed instead of simulated, and fresh cells are
// committed, so a rerun is byte-identical to the first run while
// simulating nothing. -shard k/N restricts one invocation to a
// deterministic 1-of-N slice of the cells, so N processes or machines
// populate one shared store without coordination; the merge verb then
// assembles the complete figure purely from the store, failing with
// the list of missing cell keys if any shard has not finished.
//
// -v appends per-study observability lines: how cells were produced
// (simulated, replayed, failures replayed) and the vtime kernel's
// scheduling counters (switches, ping-pong fast-slot hits, Sync
// fast-path hits, heap operations, wakes), so scheduling-path perf
// regressions show up in CI logs instead of silently inflating wall
// time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	containerhpc "repro"
)

// studyNames lists every experiment in "all" order.
var studyNames = []string{"solutions", "fig1", "fig2", "fig3", "portability", "iostudy"}

// -quick sweep points. Vars rather than literals so the CLI smoke test
// can shrink them further without bypassing any of the wiring.
var (
	quickFig2Nodes = []int{2, 4, 8, 16}
	quickFig3Nodes = []int{4, 8, 16, 32, 64}
)

// cliConfig carries every flag behind the study argument.
type cliConfig struct {
	quick, csv bool
	verbose    bool // -v: per-study cache and kernel counters
	parallel   int
	cacheDir   string
	shard      string // "k/N", empty = no sharding
	merge      bool   // assemble purely from the store
}

func main() {
	var cfg cliConfig
	flag.BoolVar(&cfg.quick, "quick", false, "trimmed sweeps (same shapes, minutes less wall time)")
	flag.BoolVar(&cfg.csv, "csv", false, "emit CSV instead of tables")
	flag.BoolVar(&cfg.verbose, "v", false, "report per-study cache and vtime kernel counters")
	flag.IntVar(&cfg.parallel, "parallel", 0, "max concurrently simulated cells (0 = all CPUs)")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "persistent result store directory (replay hits, commit misses)")
	flag.StringVar(&cfg.shard, "shard", "", "compute only slice k/N of the cells into -cache-dir")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hpcstudy [-quick] [-csv] [-v] [-parallel N] [-cache-dir DIR [-shard k/N]] [merge] <fig1|fig2|fig3|solutions|portability|iostudy|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) > 0 && args[0] == "merge" {
		cfg.merge = true
		args = args[1:]
	}
	if len(args) != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := runStudy(os.Stdout, args[0], cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hpcstudy: %v\n", err)
		var ue usageError
		var se unknownStudyError
		if errors.As(err, &ue) || errors.As(err, &se) {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError reports CLI misuse (invalid flag value or combination);
// main answers it with the usage text and exit code 2.
type usageError string

func (e usageError) Error() string { return string(e) }

// unknownStudyError reports a study name outside the known set.
type unknownStudyError string

func (e unknownStudyError) Error() string { return fmt.Sprintf("unknown study %q", string(e)) }

// runStudy regenerates one study (or "all") into w — the whole CLI
// behind flag parsing, so tests can drive it directly.
func runStudy(w io.Writer, which string, cfg cliConfig) error {
	if cfg.parallel < 0 {
		return usageError(fmt.Sprintf("-parallel must be ≥ 0 (0 = all CPUs), got %d", cfg.parallel))
	}
	var shard containerhpc.Shard
	if cfg.shard != "" {
		if cfg.cacheDir == "" {
			return usageError("-shard needs -cache-dir: shards meet in a shared result store")
		}
		if cfg.merge {
			return usageError("merge assembles from the store; it cannot be sharded")
		}
		var err error
		if shard, err = containerhpc.ParseShard(cfg.shard); err != nil {
			return usageError(err.Error())
		}
	}
	if cfg.merge && cfg.cacheDir == "" {
		return usageError("merge needs -cache-dir: it assembles figures from a populated store")
	}

	stats := &containerhpc.SweepStats{}
	opt := containerhpc.Options{Parallelism: cfg.parallel, Stats: stats}
	if cfg.cacheDir != "" {
		store, err := containerhpc.OpenStore(cfg.cacheDir)
		if err != nil {
			return err
		}
		defer store.Close()
		opt.Store, opt.Shard, opt.FromStore = store, shard, cfg.merge
	}

	jobs := map[string]func(io.Writer) error{
		"fig1":        func(w io.Writer) error { return fig1(w, opt, cfg) },
		"fig2":        func(w io.Writer) error { return fig2(w, opt, cfg) },
		"fig3":        func(w io.Writer) error { return fig3(w, opt, cfg) },
		"solutions":   func(w io.Writer) error { return solutions(w, opt) },
		"portability": func(w io.Writer) error { return portability(w, opt) },
		"iostudy":     func(w io.Writer) error { return iostudy(w, opt) },
	}
	run := func(name string, f func(io.Writer) error) error {
		start := time.Now()
		hits0, comp0, neg0 := stats.Hits.Load(), stats.Computed.Load(), stats.NegHits.Load()
		kern0 := stats.Kernel()
		verbose := func() {
			if !cfg.verbose {
				return
			}
			k := stats.Kernel().Sub(kern0)
			fmt.Fprintf(w, "  %s cells: %d simulated, %d replayed, %d failures replayed\n",
				name, stats.Computed.Load()-comp0, stats.Hits.Load()-hits0, stats.NegHits.Load()-neg0)
			fmt.Fprintf(w, "  %s kernel: %d switches (%d ping-pong), %d sync fast-path, %d heap ops, %d wakes (%d batched flushes)\n",
				name, k.Switches, k.PingPong, k.SyncFast, k.HeapOps, k.Wakes, k.WakeBatches)
		}
		err := f(w)
		var miss *containerhpc.MissingCellsError
		if err != nil && shard.Active() && errors.As(err, &miss) {
			// A populate shard finished its slice; the rest belongs to
			// other shards and is not a failure.
			fmt.Fprintf(w, "%s: shard %s done: %d cells simulated, %d replayed, %d left to other shards\n\n",
				name, shard, stats.Computed.Load()-comp0, stats.Hits.Load()-hits0, len(miss.Cells))
			verbose()
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		verbose()
		fmt.Fprintf(w, "  (%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if which == "all" {
		for _, name := range studyNames {
			if err := run(name, jobs[name]); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := jobs[which]
	if !ok {
		return unknownStudyError(which)
	}
	return run(which, f)
}

func fig1(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		c := containerhpc.ArteryCFDLenox()
		c.SimSteps = 1
		opt.Case = c
	}
	res, err := containerhpc.Fig1(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig2(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		c := containerhpc.ArteryCFDCTEPower()
		c.SimSteps = 1
		opt.Case = c
		opt.NodePoints = quickFig2Nodes
	}
	res, err := containerhpc.Fig2(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig3(w io.Writer, opt containerhpc.Options, cfg cliConfig) error {
	if cfg.quick {
		opt.NodePoints = quickFig3Nodes
	}
	res, err := containerhpc.Fig3(opt)
	if err != nil {
		return err
	}
	if cfg.csv {
		res.CSV(w)
		return nil
	}
	res.Render(w)
	fmt.Fprintln(w)
	res.RenderChart(w)
	return nil
}

func solutions(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.Solutions(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func portability(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.Portability(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func iostudy(w io.Writer, opt containerhpc.Options) error {
	res, err := containerhpc.IOStudy(opt)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
