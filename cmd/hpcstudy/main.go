// Command hpcstudy regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	hpcstudy [-quick] [-csv] <fig1|fig2|fig3|solutions|portability|iostudy|all>
//
// Without -quick every experiment runs at paper scale; fig3's 256-node
// point simulates 12,288 MPI ranks and takes several minutes of wall
// time. -quick trims the sweeps to a laptop-friendly subset with the
// same qualitative shapes. -csv emits machine-readable data instead of
// tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	containerhpc "repro"
)

func main() {
	quick := flag.Bool("quick", false, "trimmed sweeps (same shapes, minutes less wall time)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hpcstudy [-quick] [-csv] <fig1|fig2|fig3|solutions|portability|iostudy|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	which := flag.Arg(0)
	w := os.Stdout

	run := func(name string, f func(io.Writer) error) {
		start := time.Now()
		if err := f(w); err != nil {
			fmt.Fprintf(os.Stderr, "hpcstudy %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "  (%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	jobs := map[string]func(io.Writer) error{
		"fig1":        func(w io.Writer) error { return fig1(w, *quick, *csv) },
		"fig2":        func(w io.Writer) error { return fig2(w, *quick, *csv) },
		"fig3":        func(w io.Writer) error { return fig3(w, *quick, *csv) },
		"solutions":   func(w io.Writer) error { return solutions(w) },
		"portability": func(w io.Writer) error { return portability(w) },
		"iostudy":     func(w io.Writer) error { return iostudy(w) },
	}
	if which == "all" {
		for _, name := range []string{"solutions", "fig1", "fig2", "fig3", "portability", "iostudy"} {
			run(name, jobs[name])
		}
		return
	}
	f, ok := jobs[which]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	run(which, f)
}

func fig1(w io.Writer, quick, csv bool) error {
	opt := containerhpc.Options{}
	if quick {
		c := containerhpc.ArteryCFDLenox()
		c.SimSteps = 1
		opt.Case = c
	}
	res, err := containerhpc.Fig1(opt)
	if err != nil {
		return err
	}
	if csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig2(w io.Writer, quick, csv bool) error {
	opt := containerhpc.Options{}
	if quick {
		c := containerhpc.ArteryCFDCTEPower()
		c.SimSteps = 1
		opt.Case = c
		opt.NodePoints = []int{2, 4, 8, 16}
	}
	res, err := containerhpc.Fig2(opt)
	if err != nil {
		return err
	}
	if csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig3(w io.Writer, quick, csv bool) error {
	opt := containerhpc.Options{}
	if quick {
		opt.NodePoints = []int{4, 8, 16, 32, 64}
	}
	res, err := containerhpc.Fig3(opt)
	if err != nil {
		return err
	}
	if csv {
		res.CSV(w)
		return nil
	}
	res.Render(w)
	fmt.Fprintln(w)
	res.RenderChart(w)
	return nil
}

func solutions(w io.Writer) error {
	res, err := containerhpc.Solutions(containerhpc.Options{})
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func portability(w io.Writer) error {
	res, err := containerhpc.Portability(containerhpc.Options{})
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func iostudy(w io.Writer) error {
	res, err := containerhpc.IOStudy(containerhpc.Options{})
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
