// Command hpcstudy regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	hpcstudy [-quick] [-csv] [-parallel N] <fig1|fig2|fig3|solutions|portability|iostudy|all>
//
// Without -quick every experiment runs at paper scale; fig3's 256-node
// point simulates 12,288 MPI ranks and takes several minutes of wall
// time. -quick trims the sweeps to a laptop-friendly subset with the
// same qualitative shapes. -csv emits machine-readable data instead of
// tables. -parallel bounds the number of concurrently simulated cells
// (default: all CPUs); results are identical at every setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	containerhpc "repro"
)

// studyNames lists every experiment in "all" order.
var studyNames = []string{"solutions", "fig1", "fig2", "fig3", "portability", "iostudy"}

// -quick sweep points. Vars rather than literals so the CLI smoke test
// can shrink them further without bypassing any of the wiring.
var (
	quickFig2Nodes = []int{2, 4, 8, 16}
	quickFig3Nodes = []int{4, 8, 16, 32, 64}
)

func main() {
	quick := flag.Bool("quick", false, "trimmed sweeps (same shapes, minutes less wall time)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	parallel := flag.Int("parallel", 0, "max concurrently simulated cells (0 = all CPUs)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hpcstudy [-quick] [-csv] [-parallel N] <fig1|fig2|fig3|solutions|portability|iostudy|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := runStudy(os.Stdout, flag.Arg(0), *quick, *csv, *parallel); err != nil {
		fmt.Fprintf(os.Stderr, "hpcstudy: %v\n", err)
		if _, ok := err.(unknownStudyError); ok {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// unknownStudyError reports a study name outside the known set.
type unknownStudyError string

func (e unknownStudyError) Error() string { return fmt.Sprintf("unknown study %q", string(e)) }

// runStudy regenerates one study (or "all") into w — the whole CLI
// behind flag parsing, so tests can drive it directly.
func runStudy(w io.Writer, which string, quick, csv bool, parallel int) error {
	jobs := map[string]func(io.Writer) error{
		"fig1":        func(w io.Writer) error { return fig1(w, quick, csv, parallel) },
		"fig2":        func(w io.Writer) error { return fig2(w, quick, csv, parallel) },
		"fig3":        func(w io.Writer) error { return fig3(w, quick, csv, parallel) },
		"solutions":   func(w io.Writer) error { return solutions(w, parallel) },
		"portability": func(w io.Writer) error { return portability(w, parallel) },
		"iostudy":     func(w io.Writer) error { return iostudy(w, parallel) },
	}
	run := func(name string, f func(io.Writer) error) error {
		start := time.Now()
		if err := f(w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "  (%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if which == "all" {
		for _, name := range studyNames {
			if err := run(name, jobs[name]); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := jobs[which]
	if !ok {
		return unknownStudyError(which)
	}
	return run(which, f)
}

func fig1(w io.Writer, quick, csv bool, parallel int) error {
	opt := containerhpc.Options{Parallelism: parallel}
	if quick {
		c := containerhpc.ArteryCFDLenox()
		c.SimSteps = 1
		opt.Case = c
	}
	res, err := containerhpc.Fig1(opt)
	if err != nil {
		return err
	}
	if csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig2(w io.Writer, quick, csv bool, parallel int) error {
	opt := containerhpc.Options{Parallelism: parallel}
	if quick {
		c := containerhpc.ArteryCFDCTEPower()
		c.SimSteps = 1
		opt.Case = c
		opt.NodePoints = quickFig2Nodes
	}
	res, err := containerhpc.Fig2(opt)
	if err != nil {
		return err
	}
	if csv {
		res.CSV(w)
	} else {
		res.Render(w)
	}
	return nil
}

func fig3(w io.Writer, quick, csv bool, parallel int) error {
	opt := containerhpc.Options{Parallelism: parallel}
	if quick {
		opt.NodePoints = quickFig3Nodes
	}
	res, err := containerhpc.Fig3(opt)
	if err != nil {
		return err
	}
	if csv {
		res.CSV(w)
		return nil
	}
	res.Render(w)
	fmt.Fprintln(w)
	res.RenderChart(w)
	return nil
}

func solutions(w io.Writer, parallel int) error {
	res, err := containerhpc.Solutions(containerhpc.Options{Parallelism: parallel})
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func portability(w io.Writer, parallel int) error {
	res, err := containerhpc.Portability(containerhpc.Options{Parallelism: parallel})
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

func iostudy(w io.Writer, parallel int) error {
	res, err := containerhpc.IOStudy(containerhpc.Options{Parallelism: parallel})
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}
