package main

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSweepUsage asserts the sweep verb's flag contracts.
func TestSweepUsage(t *testing.T) {
	var ue usageError
	if err := runSweep(io.Discard, "fig2", cliConfig{}); !errors.As(err, &ue) {
		t.Fatalf("sweep without -coordinator: %v", err)
	}
	err := runSweep(io.Discard, "fig2", cliConfig{coordinator: "http://x", cacheURL: "http://y"})
	if !errors.As(err, &ue) {
		t.Fatalf("sweep with -cache-url: %v", err)
	}
	err = runSweep(io.Discard, "fig2", cliConfig{coordinator: "http://x", shard: "1/2"})
	if !errors.As(err, &ue) {
		t.Fatalf("sweep with -shard: %v", err)
	}
	// Multi-sweep studies cannot be coordinated; the error points at
	// static sharding instead.
	err = runSweep(io.Discard, "fig3", cliConfig{coordinator: "http://x"})
	if !errors.As(err, &ue) || !strings.Contains(err.Error(), "-shard") {
		t.Fatalf("sweep fig3: %v", err)
	}
	// A scenario spec cannot be resized by -quick.
	err = runSweep(io.Discard, "spec.json", cliConfig{coordinator: "http://x", quick: true})
	if !errors.As(err, &ue) {
		t.Fatalf("sweep spec with -quick: %v", err)
	}
	// The coordinator side: serve -sweep refuses studies it cannot
	// enumerate as one sweep.
	_, err = buildWorkQueue(io.Discard, nil, cliConfig{sweepStudy: "fig3"}, nil)
	if !errors.As(err, &ue) {
		t.Fatalf("serve -sweep fig3: %v", err)
	}
}

// TestCoordinatedSweepCLI drives the full CLI workflow in-process:
// `serve -sweep fig2` coordinates two concurrent workers, a late
// worker finds the sweep already done, and a merge with nothing but
// the registry URL reproduces the local reference byte-identically.
func TestCoordinatedSweepCLI(t *testing.T) {
	shrinkQuick(t)
	var ref strings.Builder
	if err := runStudy(&ref, "fig2", cliConfig{quick: true, parallel: 2}); err != nil {
		t.Fatal(err)
	}

	url, stop := startServe(t, cliConfig{
		cacheDir:   filepath.Join(t.TempDir(), "central"),
		sweepStudy: "fig2",
		quick:      true,
		leaseTTL:   2 * time.Second, // heartbeat TTL/4: a blocked claim retries in 500ms, not 15s
		leaseBatch: 2,
	})
	defer stop()

	workerCfg := func(name string) cliConfig {
		return cliConfig{
			quick: true, parallel: 2,
			coordinator: url, workerName: name,
		}
	}
	var wg sync.WaitGroup
	outs := make([]strings.Builder, 2)
	errs := make([]error, 2)
	for i, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = runSweep(&outs[i], "fig2", workerCfg(name))
		}(i, name)
	}
	wg.Wait()
	var cells int
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		out := outs[i].String()
		if !strings.Contains(out, "0 failures, 0 leases lost") {
			t.Fatalf("worker %d output:\n%s", i, out)
		}
		// "N cells run" — both workers together must cover all 6.
		cells += summaryCells(t, out)
	}
	if cells != 6 {
		t.Fatalf("workers ran %d cells between them, want 6", cells)
	}

	// A late worker claims nothing: the sweep is done.
	var late strings.Builder
	if err := runSweep(&late, "fig2", workerCfg("late")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(late.String(), "0 batches, 0 cells run") {
		t.Fatalf("late worker re-ran cells:\n%s", late.String())
	}

	// Warm replay against the registry simulates nothing...
	var warm strings.Builder
	if err := runStudy(&warm, "fig2", cliConfig{quick: true, parallel: 2, verbose: true, cacheURL: url}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "fig2 cells: 0 simulated") {
		t.Fatalf("warm rerun after coordinated sweep simulated cells:\n%s", warm.String())
	}
	// ...and the merged figure matches the local reference.
	var merged strings.Builder
	if err := runStudy(&merged, "fig2", cliConfig{quick: true, parallel: 2, cacheURL: url, merge: true}); err != nil {
		t.Fatal(err)
	}
	if stripTimings(merged.String()) != stripTimings(ref.String()) {
		t.Fatalf("coordinated sweep merge differs from the local run:\n--- local ---\n%s\n--- merged ---\n%s",
			ref.String(), merged.String())
	}
}

// summaryCells extracts "M cells run" from a worker summary line.
func summaryCells(t *testing.T, out string) int {
	t.Helper()
	_, rest, ok := strings.Cut(out, "done: ")
	if !ok {
		t.Fatalf("no worker summary in:\n%s", out)
	}
	var batches, cells int
	if _, err := fmt.Sscanf(rest, "%d batches, %d cells run", &batches, &cells); err != nil {
		t.Fatalf("worker summary unparsable (%v):\n%s", err, out)
	}
	return cells
}
