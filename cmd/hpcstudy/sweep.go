package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	containerhpc "repro"
)

// Coordinated sweeps: `hpcstudy serve -sweep <study>` turns the
// registry into a sweep coordinator handing out leased cell batches on
// /v1/work, and `hpcstudy sweep -coordinator URL <study>` runs a
// worker that pulls batches, heartbeats in the background, and commits
// results to the same registry. Both sides enumerate the study
// themselves and compare stamps, so a worker can never simulate cells
// for a study it was not started with.

// sweepSpecs enumerates the cells of a coordinatable study: fig1,
// fig2, or a scenario spec path. The other built-ins assemble several
// sweeps with cross-cell post-processing and stay on static -shard.
func sweepSpecs(which string, cfg cliConfig) (string, []containerhpc.CellSpec, error) {
	switch which {
	case "fig1":
		opt := containerhpc.Options{}
		if cfg.quick {
			c := containerhpc.ArteryCFDLenox()
			c.SimSteps = 1
			opt.Case = c
		}
		return "fig1", containerhpc.Fig1Specs(opt), nil
	case "fig2":
		opt := containerhpc.Options{}
		if cfg.quick {
			c := containerhpc.ArteryCFDCTEPower()
			c.SimSteps = 1
			opt.Case = c
			opt.NodePoints = quickFig2Nodes
		}
		return "fig2", containerhpc.Fig2Specs(opt), nil
	}
	if looksLikeSpec(which) {
		if cfg.quick {
			return "", nil, usageError("-quick trims the built-in studies; size a scenario via its spec (case.sim_steps)")
		}
		st, err := containerhpc.LoadScenario(which)
		if err != nil {
			return "", nil, err
		}
		return st.Name(), st.Cells(), nil
	}
	return "", nil, usageError(fmt.Sprintf(
		"coordinated sweeps take fig1, fig2, or a scenario spec; %q is not one (the other studies assemble multiple sweeps — use -shard)", which))
}

// workCellsFor converts an enumeration into the coordinator's work
// units: (key, label, deployment group) per cell, the key→spec map a
// worker resolves leases against, and the enumeration stamp both
// sides must agree on.
func workCellsFor(name string, specs []containerhpc.CellSpec) ([]containerhpc.WorkCell, map[string]containerhpc.CellSpec, string, error) {
	cells := make([]containerhpc.WorkCell, 0, len(specs))
	byKey := make(map[string]containerhpc.CellSpec, len(specs))
	keys := make([]string, 0, len(specs))
	for _, sp := range specs {
		key, err := sp.Key()
		if err != nil {
			return nil, nil, "", fmt.Errorf("fingerprinting %s: %w", sp.Label, err)
		}
		cells = append(cells, containerhpc.WorkCell{Key: key, Label: sp.Label, Group: sp.DeployGroup()})
		byKey[key] = sp
		keys = append(keys, key)
	}
	return cells, byKey, containerhpc.WorkStamp(name, keys), nil
}

// buildWorkQueue enumerates -sweep's study against the serve store and
// builds the lease queue: cells the store already holds (successes and
// recorded failures alike) are marked done up front, so a restarted
// coordinator resumes with exactly the un-committed remainder.
func buildWorkQueue(w io.Writer, store *containerhpc.DirStore, cfg cliConfig, journal *containerhpc.FleetJournal) (*containerhpc.WorkQueue, error) {
	name, specs, err := sweepSpecs(cfg.sweepStudy, cfg)
	if err != nil {
		return nil, err
	}
	cells, _, _, err := workCellsFor(name, specs)
	if err != nil {
		return nil, err
	}
	return containerhpc.NewWorkQueue(cells, containerhpc.WorkQueueOptions{
		Study:     name,
		BatchSize: cfg.leaseBatch,
		LeaseTTL:  cfg.leaseTTL,
		Committed: func(key string) bool {
			_, ok, err := store.Lookup(key)
			return err == nil && ok
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(w, format+"\n", args...)
		},
		Journal: journal,
	}), nil
}

// defaultWorkerName identifies a worker when -worker is not given.
func defaultWorkerName() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// runSweep is the worker mode: enumerate the study, dial the
// coordinator (which is also the result registry the worker commits
// to), and drain leased batches until the sweep is done. A killed
// sibling's batches come back to us via lease expiry; if we are the
// one losing leases (a coordinator outage outlasting the retry
// budget), we exit with a resumable-state message and committed work
// stays durable.
func runSweep(w io.Writer, which string, cfg cliConfig) error {
	if cfg.coordinator == "" {
		return usageError("sweep needs -coordinator URL: the registry started with `hpcstudy serve -sweep`")
	}
	if cfg.cacheURL != "" {
		return usageError("sweep commits to the coordinator itself; -cache-url does not apply")
	}
	if cfg.shard != "" {
		return usageError("sweep batches are leased by the coordinator; -shard does not apply")
	}
	name, specs, err := sweepSpecs(which, cfg)
	if err != nil {
		return err
	}
	_, byKey, stamp, err := workCellsFor(name, specs)
	if err != nil {
		return err
	}
	worker := cfg.workerName
	if worker == "" {
		worker = defaultWorkerName()
	}
	clientOpt := containerhpc.RegistryClientOptions{JitterKey: worker}
	if cfg.verbose {
		clientOpt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var journal *containerhpc.FleetJournal
	if cfg.fleetlog != "" {
		if journal, err = containerhpc.OpenFleetJournal(cfg.fleetlog, worker); err != nil {
			return err
		}
		defer journal.Close()
		clientOpt.Journal = journal
	}
	client, err := containerhpc.DialStoreWith(cfg.coordinator, clientOpt)
	if err != nil {
		return err
	}
	defer client.Close()
	var store containerhpc.Store = client
	if cfg.cacheDir != "" {
		local, err := containerhpc.OpenStore(cfg.cacheDir)
		if err != nil {
			return err
		}
		store = containerhpc.NewTieredStore(local, client)
		defer store.Close()
	}
	par := cfg.parallel
	if par <= 0 {
		par = runtime.NumCPU()
	}
	stats := &containerhpc.SweepStats{}
	eng := containerhpc.NewSweep(containerhpc.Options{
		Parallelism: par,
		Stats:       stats,
		Store:       store,
		TraceDir:    cfg.traceDir,
	})
	logf := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	// Per-cell accounting shared by two consumers: -progress (the same
	// stderr rate/ETA lines the local sweep path prints) and the
	// heartbeat progress summaries the coordinator aggregates onto
	// GET /v1/status. RunOne reports no events itself, so the worker
	// counts its own completions against the study's full cell count;
	// the cached split is reconstructed from the engine's hit counters
	// (one event consumes at most one hit, so the aggregate split stays
	// right even when parallel cells finish together).
	var prog *containerhpc.Progress
	if cfg.progress {
		prog = containerhpc.NewProgress(os.Stderr)
	}
	var progMu sync.Mutex
	var progDone atomic.Int64
	var progHits int64
	var cellsFailed int
	var virtualSec, commSec float64
	rep, err := containerhpc.RunWorker(client, containerhpc.WorkerOptions{
		Name:     worker,
		Stamp:    stamp,
		Parallel: par,
		Logf:     logf,
		Journal:  journal,
		Progress: func() containerhpc.WorkerProgress {
			progMu.Lock()
			defer progMu.Unlock()
			return containerhpc.WorkerProgress{
				Cells:          int(progDone.Load()),
				Failures:       cellsFailed,
				Simulated:      stats.Computed.Load(),
				Replayed:       stats.Hits.Load() + stats.NegHits.Load(),
				VirtualSeconds: virtualSec,
				CommSeconds:    commSec,
			}
		},
		Run: func(wc containerhpc.WorkCell) error {
			sp, ok := byKey[wc.Key]
			if !ok {
				return fmt.Errorf("lease names cell %s (%s) outside this worker's enumeration", wc.Key, wc.Label)
			}
			res, err := eng.RunOne(sp)
			if err != nil {
				progMu.Lock()
				cellsFailed++
				progMu.Unlock()
				return err
			}
			progMu.Lock()
			for _, end := range res.Exec.MPI.RankEnd {
				virtualSec += float64(end)
			}
			commSec += float64(res.Exec.MPI.AvgCommTime) * float64(len(res.Exec.MPI.RankEnd))
			hits := stats.Hits.Load() + stats.NegHits.Load()
			cached := hits > progHits
			if cached {
				progHits++
			}
			progMu.Unlock()
			if prog != nil {
				prog.Event(int(progDone.Add(1)), len(byKey), cached)
			} else {
				progDone.Add(1)
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sweep %s: worker %s done: %d batches, %d cells run (%d simulated, %d replayed), %d failures, %d leases lost\n",
		name, worker, rep.Batches, rep.Cells, stats.Computed.Load(), stats.Hits.Load()+stats.NegHits.Load(), rep.Failures, rep.LeasesLost)
	if cfg.verbose {
		st := client.Stats()
		fmt.Fprintf(w, "sweep %s: store: %d lookups, %d hits, %d puts, %d retries\n",
			name, st.Lookups, st.Hits, st.Puts, st.Retries)
	}
	return nil
}
