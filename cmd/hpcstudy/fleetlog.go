package main

import (
	"fmt"
	"io"
	"os"

	containerhpc "repro"
)

// runFleetlog merges the -fleetlog journals under dir into one
// clock-aligned timeline. Default output is the per-worker wall-clock
// attribution table (exact tiling: simulate + wire + backoff + idle ==
// each worker's observed span); -csv emits it as CSV; -chrome FILE
// additionally writes the merged Chrome Trace Event timeline; -diff
// DIRB renders the attribution delta of a second run against this one.
// Everything printed is a pure function of the journal bytes, so two
// invocations over the same directory are byte-identical.
func runFleetlog(w io.Writer, dir string, cfg cliConfig) error {
	run, err := containerhpc.ReadFleetDir(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fleetlog %s: %s\n", dir, run.Summary())
	if cfg.chromeOut != "" {
		data, err := run.Chrome()
		if err != nil {
			return err
		}
		if cfg.chromeOut == "-" {
			if _, err := w.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(cfg.chromeOut, data, 0o644); err != nil {
			return err
		} else {
			fmt.Fprintf(w, "fleetlog: wrote Chrome trace to %s (%d bytes)\n", cfg.chromeOut, len(data))
		}
	}
	if cfg.diffSpec != "" {
		runB, err := containerhpc.ReadFleetDir(cfg.diffSpec)
		if err != nil {
			return err
		}
		diffs, err := containerhpc.FleetDiff(run, runB)
		if err != nil {
			return err
		}
		containerhpc.RenderFleetDiff(w, diffs)
		return nil
	}
	attrs, err := run.Attribution()
	if err != nil {
		return err
	}
	if cfg.csv {
		containerhpc.FleetAttributionCSV(w, attrs)
	} else {
		containerhpc.RenderFleetAttribution(w, attrs)
	}
	return nil
}
