package main

import (
	"bytes"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	containerhpc "repro"
)

// tracedFig2 runs the quick fig2 study once with tracing and returns
// the trace directory.
func tracedFig2(t *testing.T) string {
	t.Helper()
	shrinkQuick(t)
	dir := t.TempDir()
	var sb strings.Builder
	if err := runStudy(&sb, "fig2", cliConfig{quick: true, parallel: 4, traceDir: dir}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// readTree walks dir and returns every file's contents keyed by
// relative path.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAnalyzeDeterministic: analyze over a traced run renders
// byte-identical stdout, CSV, and -o artifact trees across repeated
// invocations, and the real profiles satisfy the attribution
// invariant (categories sum exactly to each rank's total).
func TestAnalyzeDeterministic(t *testing.T) {
	traceDir := tracedFig2(t)
	base := cliConfig{traceDir: traceDir, top: 10}

	ps, err := containerhpc.ReadProfiles(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		for id, b := range p.PerRank {
			// Compute is defined as the residual of the wait partition, so
			// this identity is bit-exact in the engine's evaluation order.
			if res := b.Total - b.P2PWait - b.CollectiveWait - b.ResourceWait; res != b.Compute {
				t.Errorf("%s rank %d: total minus waits = %v, compute %v", p.Label, id, res, b.Compute)
			}
			if b.Compute < 0 || b.P2PWait < 0 || b.CollectiveWait < 0 || b.ResourceWait < 0 {
				t.Errorf("%s rank %d: negative category in %+v", p.Label, id, b)
			}
		}
	}

	var out1, out2 strings.Builder
	if err := runAnalyze(&out1, base); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze(&out2, base); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatal("analyze stdout differs between runs")
	}
	for _, want := range []string{"compute", "critical path", "makespan"} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("analyze output lacks %q", want)
		}
	}

	csvCfg := base
	csvCfg.csv = true
	var csv1, csv2 strings.Builder
	if err := runAnalyze(&csv1, csvCfg); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze(&csv2, csvCfg); err != nil {
		t.Fatal(err)
	}
	if csv1.String() != csv2.String() {
		t.Fatal("analyze -csv differs between runs")
	}

	treeA, treeB := t.TempDir(), t.TempDir()
	for _, dir := range []string{treeA, treeB} {
		cfg := base
		cfg.analyzeOut = dir
		if err := runAnalyze(io.Discard, cfg); err != nil {
			t.Fatal(err)
		}
	}
	a, b := readTree(t, treeA), readTree(t, treeB)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("analyze trees differ in file count: %d vs %d", len(a), len(b))
	}
	folded := 0
	for rel, data := range a { //lint:allow maporder -- per-name comparison, no ordered output
		if !bytes.Equal(data, b[rel]) {
			t.Fatalf("analyze artifact %s differs between runs", rel)
		}
		if strings.HasPrefix(rel, "folded"+string(os.PathSeparator)) {
			folded++
		}
	}
	for _, want := range []string{"summary.txt", "attribution.csv", "phases.csv", "critical-path.txt"} {
		if _, ok := a[want]; !ok {
			t.Errorf("analyze tree lacks %s", want)
		}
	}
	if folded != len(ps) {
		t.Errorf("tree holds %d folded stacks, want one per cell (%d)", folded, len(ps))
	}
}

// TestAnalyzeDiffMode: -diff "A=B" between two real cells renders a
// deterministic report attributing the makespan delta to named phases.
func TestAnalyzeDiffMode(t *testing.T) {
	traceDir := tracedFig2(t)
	ps, err := containerhpc.ReadProfiles(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) < 2 {
		t.Fatalf("only %d profiled cells", len(ps))
	}
	cfg := cliConfig{traceDir: traceDir, diffSpec: ps[0].Label + "=" + ps[len(ps)-1].Label}
	var d1, d2 strings.Builder
	if err := runAnalyze(&d1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze(&d2, cfg); err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Fatal("diff output differs between runs")
	}
	for _, want := range []string{ps[0].Label, ps[len(ps)-1].Label, "makespan"} {
		if !strings.Contains(d1.String(), want) {
			t.Errorf("diff output lacks %q:\n%s", want, d1.String())
		}
	}
}

// TestAnalyzeUsageErrors: missing -trace, a bad -top, and an ambiguous
// -diff pattern are usage errors, not panics or empty output.
func TestAnalyzeUsageErrors(t *testing.T) {
	if err := runAnalyze(io.Discard, cliConfig{}); err == nil || !strings.Contains(err.Error(), "-trace") {
		t.Errorf("missing -trace: err = %v", err)
	}
	if err := runAnalyze(io.Discard, cliConfig{traceDir: t.TempDir(), top: -1}); err == nil || !strings.Contains(err.Error(), "-top") {
		t.Errorf("negative -top: err = %v", err)
	}
	traceDir := tracedFig2(t)
	cfg := cliConfig{traceDir: traceDir, diffSpec: "nodes=nodes"}
	if err := runAnalyze(io.Discard, cfg); err == nil || !strings.Contains(err.Error(), "match") {
		t.Errorf("ambiguous diff: err = %v", err)
	}
}
