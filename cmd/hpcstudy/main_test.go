package main

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// shrinkQuick trims the -quick node points to test size and restores
// them when the test ends.
func shrinkQuick(t *testing.T) {
	t.Helper()
	f2, f3 := quickFig2Nodes, quickFig3Nodes
	quickFig2Nodes = []int{2, 4}
	quickFig3Nodes = []int{4, 8}
	t.Cleanup(func() { quickFig2Nodes, quickFig3Nodes = f2, f3 })
}

// stripTimings drops the per-study wall-clock footer, the only
// non-deterministic lines of the CLI output.
func stripTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "regenerated in") || strings.Contains(line, "shard") && strings.Contains(line, "done:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestQuickAll smoke-tests the `hpcstudy -quick all` wiring end to
// end: every study must regenerate and render into the stream. The
// quick node points are trimmed further so the whole matrix stays
// test-sized; the code path is exactly the CLI's.
func TestQuickAll(t *testing.T) {
	shrinkQuick(t)

	var sb strings.Builder
	if err := runStudy(&sb, "all", cliConfig{quick: true, parallel: 4}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Containerization solutions on Lenox", // solutions table
		"Fig 1: average elapsed time",
		"Fig 2: average elapsed time",
		"Fig 3: scalability",
		"Portability: image builds",
		"checkpoint through each container storage path", // iostudy
		"(iostudy regenerated in",                        // per-study footer of the last study
	} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}

// TestQuickCSV asserts the -csv path emits machine-readable data.
func TestQuickCSV(t *testing.T) {
	shrinkQuick(t)

	var sb strings.Builder
	if err := runStudy(&sb, "fig2", cliConfig{quick: true, csv: true, parallel: 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "nodes,Bare-metal") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if strings.Contains(out, "+--") {
		t.Fatal("csv output contains table borders")
	}
}

// TestUnknownStudy asserts a bad study name is rejected with the
// dedicated error type (the CLI exits with usage for it).
func TestUnknownStudy(t *testing.T) {
	var sb strings.Builder
	err := runStudy(&sb, "fig9", cliConfig{})
	if _, ok := err.(unknownStudyError); !ok {
		t.Fatalf("want unknownStudyError, got %v", err)
	}
}

// TestNegativeParallel asserts -parallel rejects negative values with
// a usage error instead of silently meaning "all CPUs".
func TestNegativeParallel(t *testing.T) {
	var sb strings.Builder
	err := runStudy(&sb, "fig2", cliConfig{quick: true, parallel: -3})
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("want usageError, got %v", err)
	}
	if !strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("error does not name the flag: %v", err)
	}
}

// TestFlagCombinations asserts the store-related flag contracts:
// -shard and merge need -cache-dir, merge cannot be sharded, and a
// malformed shard is rejected.
func TestFlagCombinations(t *testing.T) {
	cases := []cliConfig{
		{shard: "1/2"}, // -shard without -cache-dir
		{merge: true},  // merge without -cache-dir
		{shard: "1/2", merge: true, cacheDir: "x"}, // merge + shard
		{shard: "three/4", cacheDir: "x"},          // malformed shard
		{shard: "5/2", cacheDir: "x"},              // out of range
	}
	for _, cfg := range cases {
		var sb strings.Builder
		err := runStudy(&sb, "fig2", cfg)
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("cfg %+v: want usageError, got %v", cfg, err)
		}
	}
}

// TestCacheWarmRerun asserts the -cache-dir workflow end to end: a
// warm rerun of a study is byte-identical to the cold run.
func TestCacheWarmRerun(t *testing.T) {
	shrinkQuick(t)
	cfg := cliConfig{quick: true, parallel: 4, cacheDir: filepath.Join(t.TempDir(), "cells")}

	var cold, warm strings.Builder
	if err := runStudy(&cold, "fig3", cfg); err != nil {
		t.Fatal(err)
	}
	if err := runStudy(&warm, "fig3", cfg); err != nil {
		t.Fatal(err)
	}
	if stripTimings(cold.String()) != stripTimings(warm.String()) {
		t.Fatalf("warm rerun differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s",
			cold.String(), warm.String())
	}
}

// TestShardMerge asserts the distributed workflow: two -shard
// invocations populating one store, then merge, reproduce the
// unsharded output byte-identically.
func TestShardMerge(t *testing.T) {
	shrinkQuick(t)
	dir := filepath.Join(t.TempDir(), "cells")

	var unsharded strings.Builder
	if err := runStudy(&unsharded, "fig2", cliConfig{quick: true, parallel: 4}); err != nil {
		t.Fatal(err)
	}

	for _, shard := range []string{"1/2", "2/2"} {
		var sb strings.Builder
		if err := runStudy(&sb, "fig2", cliConfig{quick: true, parallel: 4, cacheDir: dir, shard: shard}); err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
	}

	var merged strings.Builder
	if err := runStudy(&merged, "fig2", cliConfig{quick: true, parallel: 4, cacheDir: dir, merge: true}); err != nil {
		t.Fatal(err)
	}
	if stripTimings(merged.String()) != stripTimings(unsharded.String()) {
		t.Fatalf("merge differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded.String(), merged.String())
	}
}

// TestMergeMissing asserts merging from an empty store fails and
// names the missing cells.
func TestMergeMissing(t *testing.T) {
	shrinkQuick(t)
	var sb strings.Builder
	err := runStudy(&sb, "fig2", cliConfig{quick: true, cacheDir: filepath.Join(t.TempDir(), "empty"), merge: true})
	if err == nil {
		t.Fatal("merge from an empty store succeeded")
	}
	if !strings.Contains(err.Error(), "not in the result store") ||
		!strings.Contains(err.Error(), "fig2") {
		t.Fatalf("error does not list missing cells: %v", err)
	}
}

// TestVerboseKernelCounters asserts -v surfaces the cache and vtime
// kernel counters per study, and that the default output stays free of
// them (the golden-comparison tests depend on that).
func TestVerboseKernelCounters(t *testing.T) {
	shrinkQuick(t)

	var quiet, verbose strings.Builder
	if err := runStudy(&quiet, "fig2", cliConfig{quick: true, parallel: 2}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "kernel:") {
		t.Fatal("default output leaks kernel counters")
	}
	if err := runStudy(&verbose, "fig2", cliConfig{quick: true, parallel: 2, verbose: true}); err != nil {
		t.Fatal(err)
	}
	out := verbose.String()
	for _, want := range []string{"fig2 cells:", "simulated", "fig2 kernel:", "switches", "heap ops"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-v output missing %q:\n%s", want, out)
		}
	}
	// A cold fig2 simulates cells, so the kernel counters must be live.
	if strings.Contains(out, "kernel: 0 switches") {
		t.Fatalf("-v reports zero switches after a cold sweep:\n%s", out)
	}
}

// syncWriter is a Builder safe to share between the serve goroutine's
// log callbacks and the test's polling.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// startServe runs the serve verb on an ephemeral port and returns the
// registry URL plus a stop function that asserts a clean shutdown.
func startServe(t *testing.T, cfg cliConfig) (string, func()) {
	t.Helper()
	cfg.listen = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	logw := &syncWriter{}
	serveErr := make(chan error, 1)
	go func() { serveErr <- runServe(ctx, logw, cfg) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		out := logw.String()
		if _, rest, ok := strings.Cut(out, "listening on "); ok {
			addr, _, _ := strings.Cut(rest, " ")
			return "http://" + addr, func() {
				cancel()
				if err := <-serveErr; err != nil {
					t.Errorf("serve did not shut down cleanly: %v", err)
				}
			}
		}
		select {
		case err := <-serveErr:
			t.Fatalf("serve exited early: %v (log: %s)", err, logw.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never reported its address: %s", logw.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeSweepMerge is the CLI's distributed workflow: a sweep
// against `hpcstudy serve` via -cache-url renders identically to a
// local run, a warm rerun simulates zero cells, and a merge with
// nothing but the URL reproduces the figure. SIGINT-style shutdown is
// exercised through the serve context.
func TestServeSweepMerge(t *testing.T) {
	shrinkQuick(t)
	url, stop := startServe(t, cliConfig{cacheDir: filepath.Join(t.TempDir(), "central")})
	defer stop()

	var ref strings.Builder
	if err := runStudy(&ref, "fig2", cliConfig{quick: true, parallel: 2}); err != nil {
		t.Fatal(err)
	}

	var cold strings.Builder
	if err := runStudy(&cold, "fig2", cliConfig{quick: true, parallel: 2, cacheURL: url}); err != nil {
		t.Fatal(err)
	}
	if stripTimings(cold.String()) != stripTimings(ref.String()) {
		t.Fatalf("registry-backed run differs from local:\n--- local ---\n%s\n--- registry ---\n%s",
			ref.String(), cold.String())
	}

	var warm strings.Builder
	if err := runStudy(&warm, "fig2", cliConfig{quick: true, parallel: 2, verbose: true, cacheURL: url}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "fig2 cells: 0 simulated") {
		t.Fatalf("warm registry rerun simulated cells:\n%s", warm.String())
	}
	if !strings.Contains(warm.String(), "fig2 store:") {
		t.Fatalf("-v output misses the store counters:\n%s", warm.String())
	}

	// merge with URL only; then the tiered configuration (scratch dir
	// + URL) for good measure.
	var merged strings.Builder
	if err := runStudy(&merged, "fig2", cliConfig{quick: true, parallel: 2, cacheURL: url, merge: true}); err != nil {
		t.Fatal(err)
	}
	if stripTimings(merged.String()) != stripTimings(ref.String()) {
		t.Fatal("merge via -cache-url differs from the local run")
	}
	var tiered strings.Builder
	err := runStudy(&tiered, "fig2", cliConfig{
		quick: true, parallel: 2, merge: true,
		cacheDir: filepath.Join(t.TempDir(), "scratch"), cacheURL: url,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stripTimings(tiered.String()) != stripTimings(ref.String()) {
		t.Fatal("tiered merge differs from the local run")
	}
}

// TestServeUsage asserts the serve verb's flag contracts.
func TestServeUsage(t *testing.T) {
	var ue usageError
	if err := runServe(context.Background(), io.Discard, cliConfig{}); !errors.As(err, &ue) {
		t.Fatalf("serve without -cache-dir: %v", err)
	}
	err := runServe(context.Background(), io.Discard, cliConfig{cacheDir: "x", cacheURL: "http://y"})
	if !errors.As(err, &ue) {
		t.Fatalf("serve with -cache-url: %v", err)
	}
	// -gc-interval without a bound would collect nothing, silently.
	err = runServe(context.Background(), io.Discard, cliConfig{cacheDir: "x", gcInterval: time.Hour})
	if !errors.As(err, &ue) {
		t.Fatalf("serve with unbounded -gc-interval: %v", err)
	}
}

// TestGCVerb asserts the gc verb: it demands a bound, reports a pass
// over fresh records without evicting them, and an aggressive size
// bound empties the store so a merge afterwards names missing cells.
func TestGCVerb(t *testing.T) {
	shrinkQuick(t)
	dir := filepath.Join(t.TempDir(), "cells")
	if err := runStudy(io.Discard, "fig2", cliConfig{quick: true, parallel: 2, cacheDir: dir}); err != nil {
		t.Fatal(err)
	}

	var ue usageError
	if err := runGC(io.Discard, cliConfig{cacheDir: dir}); !errors.As(err, &ue) {
		t.Fatal("gc without bounds accepted")
	}
	if err := runGC(io.Discard, cliConfig{maxBytes: 1}); !errors.As(err, &ue) {
		t.Fatal("gc without -cache-dir accepted")
	}

	var within strings.Builder
	if err := runGC(&within, cliConfig{cacheDir: dir, maxAge: 24 * time.Hour}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(within.String(), "0 evicted") {
		t.Fatalf("in-bounds gc evicted records: %s", within.String())
	}
	// In-bounds GC must not break a later merge.
	if err := runStudy(io.Discard, "fig2", cliConfig{quick: true, cacheDir: dir, merge: true}); err != nil {
		t.Fatalf("merge after in-bounds gc: %v", err)
	}

	var aggressive strings.Builder
	if err := runGC(&aggressive, cliConfig{cacheDir: dir, maxBytes: 1}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(aggressive.String(), " 0 evicted") {
		t.Fatalf("aggressive gc evicted nothing: %s", aggressive.String())
	}
	err := runStudy(io.Discard, "fig2", cliConfig{quick: true, cacheDir: dir, merge: true})
	if err == nil || !strings.Contains(err.Error(), "not in the result store") {
		t.Fatalf("merge after eviction: %v", err)
	}
}

// quickFig2Spec mirrors `-quick fig2` at the test's shrunk node
// points, as a scenario spec.
const quickFig2Spec = `{
  "name": "fig2",
  "title": "Fig 2: average elapsed time of artery CFD case in CTE-POWER",
  "cluster": "CTE-POWER",
  "case": {"name": "artery-cfd-ctepower", "sim_steps": 1},
  "configs": [
    {"label": "Bare-metal", "runtime": "Bare-metal"},
    {"label": "Singularity system-specific", "runtime": "Singularity", "version": "2.5.1"},
    {"label": "Singularity self-contained", "runtime": "Singularity", "version": "2.5.1", "technique": "self-contained"}
  ],
  "grid": {"nodes": [2, 4]},
  "report": {"show_fabric": true}
}`

// writeQuickSpec drops the spec into a temp file.
func writeQuickSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig2.json")
	if err := os.WriteFile(path, []byte(quickFig2Spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioMatchesBuiltinCLI is the CLI acceptance path: `hpcstudy
// run <spec>` renders byte-identically to the built-in `-quick fig2`,
// in table and CSV form, through exactly the code the binary runs.
func TestScenarioMatchesBuiltinCLI(t *testing.T) {
	shrinkQuick(t)
	spec := writeQuickSpec(t)

	var builtin, scenario strings.Builder
	if err := runStudy(&builtin, "fig2", cliConfig{quick: true, parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := runStudy(&scenario, spec, cliConfig{scenario: true, parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if stripTimings(builtin.String()) != stripTimings(scenario.String()) {
		t.Fatalf("scenario differs from builtin:\n--- builtin ---\n%s\n--- scenario ---\n%s",
			builtin.String(), scenario.String())
	}

	var bcsv, scsv strings.Builder
	if err := runStudy(&bcsv, "fig2", cliConfig{quick: true, csv: true, parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if err := runStudy(&scsv, spec, cliConfig{scenario: true, csv: true, parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if stripTimings(bcsv.String()) != stripTimings(scsv.String()) {
		t.Fatal("scenario CSV differs from builtin CSV")
	}
}

// TestScenarioSharesBuiltinStore asserts the two expressions of the
// figure are the same cells: the built-in study populates a store and
// the scenario replays every cell from it, simulating nothing.
func TestScenarioSharesBuiltinStore(t *testing.T) {
	shrinkQuick(t)
	spec := writeQuickSpec(t)
	dir := filepath.Join(t.TempDir(), "cells")

	if err := runStudy(io.Discard, "fig2", cliConfig{quick: true, parallel: 4, cacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	var warm strings.Builder
	if err := runStudy(&warm, spec, cliConfig{scenario: true, parallel: 4, verbose: true, cacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "fig2 cells: 0 simulated") {
		t.Fatalf("scenario did not replay the builtin's cells:\n%s", warm.String())
	}
}

// TestScenarioShardMergeRegistry drives the distributed workflow
// through scenario specs: two sharded `run` invocations against a
// live registry, then a merge with nothing but the URL, byte-identical
// to the built-in local run; the cold shard's -v store line must show
// prefetch-answered lookups (the registry was empty).
func TestScenarioShardMergeRegistry(t *testing.T) {
	shrinkQuick(t)
	spec := writeQuickSpec(t)
	url, stop := startServe(t, cliConfig{cacheDir: filepath.Join(t.TempDir(), "central")})
	defer stop()

	var ref strings.Builder
	if err := runStudy(&ref, "fig2", cliConfig{quick: true, parallel: 2}); err != nil {
		t.Fatal(err)
	}

	for _, shard := range []string{"1/2", "2/2"} {
		var sb strings.Builder
		err := runStudy(&sb, spec, cliConfig{scenario: true, parallel: 2, verbose: true, cacheURL: url, shard: shard})
		if err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		if shard == "1/2" {
			out := sb.String()
			if !strings.Contains(out, "answered by prefetch") || strings.Contains(out, "(0 answered by prefetch)") {
				t.Fatalf("cold shard shows no prefetch-answered lookups:\n%s", out)
			}
		}
	}

	var merged strings.Builder
	if err := runStudy(&merged, spec, cliConfig{scenario: true, parallel: 2, cacheURL: url, merge: true}); err != nil {
		t.Fatal(err)
	}
	if stripTimings(merged.String()) != stripTimings(ref.String()) {
		t.Fatalf("scenario registry merge differs from builtin local run:\n--- builtin ---\n%s\n--- merged ---\n%s",
			ref.String(), merged.String())
	}
}

// TestValidateVerb asserts validate reports a good spec's shape and a
// bad spec's field path without running anything.
func TestValidateVerb(t *testing.T) {
	spec := writeQuickSpec(t)
	var sb strings.Builder
	if err := runValidate(&sb, spec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ok: 3 configs x 2 grid points = 6 cells") {
		t.Fatalf("validate summary: %s", sb.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","cluster":"Lennox","case":{"name":"quick-cfd"},"configs":[{"runtime":"Bare-metal"}],"grid":{"nodes":[1]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runValidate(io.Discard, bad)
	if err == nil || !strings.Contains(err.Error(), "cluster") || !strings.Contains(err.Error(), "Lennox") {
		t.Fatalf("validate error does not name the field: %v", err)
	}
}

// TestScenarioList asserts -list prints every compiled cell with its
// 64-hex store key, without simulating.
func TestScenarioList(t *testing.T) {
	spec := writeQuickSpec(t)
	var sb strings.Builder
	if err := runStudy(&sb, spec, cliConfig{scenario: true, list: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 { // 6 cells + shape summary
		t.Fatalf("list printed %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "fig2 Bare-metal 2 nodes") {
		t.Fatalf("list misses a cell label:\n%s", out)
	}
	key := strings.Fields(lines[0])[0]
	if len(key) != 64 {
		t.Fatalf("list key %q is not a fingerprint", key)
	}
	// -list on a built-in study name is a usage error.
	var ue usageError
	if err := runStudy(io.Discard, "fig2", cliConfig{list: true}); !errors.As(err, &ue) {
		t.Fatal("-list on a builtin study accepted")
	}
}

// TestScenarioBadPath asserts the run verb surfaces load errors as
// plain failures (exit 1), not usage.
func TestScenarioBadPath(t *testing.T) {
	err := runStudy(io.Discard, filepath.Join(t.TempDir(), "nope.json"), cliConfig{scenario: true})
	if err == nil {
		t.Fatal("missing spec ran")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("load failure classified as usage: %v", err)
	}

	// A typo that happens to name a directory stays an unknown-study
	// diagnostic, not a JSON decode failure.
	var se unknownStudyError
	if err := runStudy(io.Discard, ".", cliConfig{}); !errors.As(err, &se) {
		t.Fatalf("directory argument: want unknownStudyError, got %v", err)
	}
}

// TestUsageVerbHelp asserts the verb summary names every verb and
// per-verb help shows only the relevant flags.
func TestUsageVerbHelp(t *testing.T) {
	var all strings.Builder
	printUsage(&all, "")
	for _, want := range []string{"run <spec.json>", "validate <spec.json>", "merge", "serve", "gc", "help", "-cache-dir", "-quick"} {
		if !strings.Contains(all.String(), want) {
			t.Errorf("top-level usage missing %q:\n%s", want, all.String())
		}
	}

	var serve strings.Builder
	printUsage(&serve, "serve")
	if !strings.Contains(serve.String(), "-listen") {
		t.Errorf("serve help missing -listen:\n%s", serve.String())
	}
	if strings.Contains(serve.String(), "-csv") {
		t.Errorf("serve help leaks study flags:\n%s", serve.String())
	}

	var run strings.Builder
	printUsage(&run, "run")
	if !strings.Contains(run.String(), "-list") || strings.Contains(run.String(), "-listen ") {
		t.Errorf("run help flags wrong:\n%s", run.String())
	}
}

// TestScenarioRejectsQuick asserts -quick on a scenario run is a
// usage error naming the spec's own sizing knob, rather than being
// silently ignored.
func TestScenarioRejectsQuick(t *testing.T) {
	spec := writeQuickSpec(t)
	var ue usageError
	err := runStudy(io.Discard, spec, cliConfig{scenario: true, quick: true})
	if !errors.As(err, &ue) || !strings.Contains(err.Error(), "sim_steps") {
		t.Fatalf("want usageError naming sim_steps, got %v", err)
	}
}
