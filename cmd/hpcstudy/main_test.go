package main

import (
	"strings"
	"testing"
)

// TestQuickAll smoke-tests the `hpcstudy -quick all` wiring end to
// end: every study must regenerate and render into the stream. The
// quick node points are trimmed further so the whole matrix stays
// test-sized; the code path is exactly the CLI's.
func TestQuickAll(t *testing.T) {
	defer func(f2, f3 []int) { quickFig2Nodes, quickFig3Nodes = f2, f3 }(quickFig2Nodes, quickFig3Nodes)
	quickFig2Nodes = []int{2, 4}
	quickFig3Nodes = []int{4, 8}

	var sb strings.Builder
	if err := runStudy(&sb, "all", true, false, 4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Containerization solutions on Lenox", // solutions table
		"Fig 1: average elapsed time",
		"Fig 2: average elapsed time",
		"Fig 3: scalability",
		"Portability: image builds",
		"checkpoint through each container storage path", // iostudy
		"(iostudy regenerated in",                        // per-study footer of the last study
	} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}

// TestQuickCSV asserts the -csv path emits machine-readable data.
func TestQuickCSV(t *testing.T) {
	defer func(f2 []int) { quickFig2Nodes = f2 }(quickFig2Nodes)
	quickFig2Nodes = []int{2, 4}

	var sb strings.Builder
	if err := runStudy(&sb, "fig2", true, true, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "nodes,Bare-metal") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if strings.Contains(out, "+--") {
		t.Fatal("csv output contains table borders")
	}
}

// TestUnknownStudy asserts a bad study name is rejected with the
// dedicated error type (the CLI exits with usage for it).
func TestUnknownStudy(t *testing.T) {
	var sb strings.Builder
	err := runStudy(&sb, "fig9", false, false, 1)
	if _, ok := err.(unknownStudyError); !ok {
		t.Fatalf("want unknownStudyError, got %v", err)
	}
}
