package main

import (
	"strings"
	"testing"
)

// TestSolutionsView smoke-tests the cheapest calibration view end to
// end: the deployment-overhead table renders through the CLI path.
func TestSolutionsView(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "solutions"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Containerization solutions on Lenox", "Docker", "Singularity", "Shifter"} {
		if !strings.Contains(out, want) {
			t.Errorf("solutions output missing %q:\n%s", want, out)
		}
	}
}

// TestUnknownView asserts a bad view name errors and lists the
// choices instead of silently printing nothing (the pre-refactor
// behaviour).
func TestUnknownView(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, "fig9")
	if err == nil {
		t.Fatal("unknown view accepted")
	}
	if !strings.Contains(err.Error(), "fig9") || !strings.Contains(err.Error(), "solutions") {
		t.Fatalf("error does not name the view or the choices: %v", err)
	}
	if sb.Len() != 0 {
		t.Fatalf("unknown view produced output: %q", sb.String())
	}
}
