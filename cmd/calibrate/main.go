// Command calibrate is a development harness for checking figure shapes
// and simulation wall costs while tuning model constants.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/alya"
	"repro/internal/cluster"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/sched"
)

func main() {
	which := "fig1"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	start := time.Now()
	if err := run(os.Stdout, which); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Println("wall:", time.Since(start))
}

// run regenerates one calibration view into w — the whole harness
// behind argument parsing, so tests can drive it directly.
func run(w io.Writer, which string) error {
	switch which {
	case "fig1":
		small := alya.ArteryCFDLenox()
		small.SimSteps = 1
		f, err := experiments.Fig1(experiments.Options{Case: small})
		if err != nil {
			return err
		}
		f.Render(w)
	case "fig2":
		small := alya.ArteryCFDCTEPower()
		small.SimSteps = 1
		f, err := experiments.Fig2(experiments.Options{Case: small, NodePoints: []int{2, 4, 8, 12, 16}})
		if err != nil {
			return err
		}
		f.Render(w)
	case "fig3":
		small := alya.ArteryFSIMareNostrum4()
		f, err := experiments.Fig3(experiments.Options{Case: small, NodePoints: []int{4, 8, 16, 32, 64}})
		if err != nil {
			return err
		}
		f.Render(w)
	case "fsibreak":
		mn4 := cluster.MareNostrum4()
		cs := alya.ArteryFSIMareNostrum4()
		sing := container.Singularity{}
		for _, kind := range []container.BuildKind{container.SystemSpecific, container.SelfContained} {
			img, err := core.BuildImageFor(sing, mn4, kind)
			if err != nil {
				return err
			}
			for _, n := range []int{4, 16, 64} {
				res, err := core.RunCell(core.Cell{
					Cluster: mn4, Runtime: sing, Image: img, Case: cs,
					Nodes: n, Ranks: n * 48, Threads: 1,
					Placement: sched.PlaceBlock, Allreduce: mpi.AllreduceReduceBcast,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-16s n=%-4d step=%-10v commFrac=%.3f maxComm=%v avgComm=%v\n",
					kind, n, res.Exec.TimePerStep, res.Exec.CommFraction,
					res.Exec.MPI.MaxCommTime, res.Exec.MPI.AvgCommTime)
			}
		}
	case "solutions":
		s, err := experiments.Solutions(experiments.Options{})
		if err != nil {
			return err
		}
		s.Render(w)
	default:
		return fmt.Errorf("unknown view %q (fig1 | fig2 | fig3 | fsibreak | solutions)", which)
	}
	return nil
}
