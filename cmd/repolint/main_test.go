package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the repolint binary once per test that needs it.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "repolint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building repolint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named "repro", so
// DefaultConfig's package globs apply to it exactly as they do to
// this repository.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runIn(t *testing.T, dir string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return string(out), ee.ExitCode()
		}
		t.Fatalf("running %s %v: %v\n%s", name, args, err, out)
	}
	return string(out), 0
}

const goMod = "module repro\n\ngo 1.24\n"

const badKrylov = `package krylov

import "time"

func Stamp() int64 { return time.Now().Unix() }
`

const allowedKrylov = `package krylov

import "time"

//lint:allow wallclock -- test fixture: timestamp never reaches simulated results
func Stamp() int64 { return time.Now().Unix() }
`

func TestVettoolFindsViolation(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod":                   goMod,
		"internal/krylov/stamp.go": badKrylov,
	})
	out, code := runIn(t, dir, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool exited 0 on a module with a wallclock violation\n%s", out)
	}
	if !strings.Contains(out, "time.Now") || !strings.Contains(out, "[wallclock]") {
		t.Fatalf("expected a tagged time.Now finding, got:\n%s", out)
	}
}

func TestVettoolAcceptsSuppression(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod":                   goMod,
		"internal/krylov/stamp.go": allowedKrylov,
	})
	out, code := runIn(t, dir, "go", "vet", "-vettool="+bin, "./...")
	if code != 0 {
		t.Fatalf("go vet -vettool rejected a justified //lint:allow (exit %d):\n%s", code, out)
	}
}

func TestStandaloneMatchesVettool(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod":                   goMod,
		"internal/krylov/stamp.go": badKrylov,
	})
	out, code := runIn(t, dir, bin, "./...")
	if code == 0 {
		t.Fatalf("standalone repolint exited 0 on a module with a wallclock violation\n%s", out)
	}
	if !strings.Contains(out, "[wallclock]") {
		t.Fatalf("expected a tagged wallclock finding, got:\n%s", out)
	}
}

func TestAnalyzerSelectionFlag(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod":                   goMod,
		"internal/krylov/stamp.go": badKrylov,
	})
	// With only wiretag selected, the wallclock violation is not run.
	out, code := runIn(t, dir, "go", "vet", "-vettool="+bin, "-wiretag", "./...")
	if code != 0 {
		t.Fatalf("selecting -wiretag should skip the wallclock finding (exit %d):\n%s", code, out)
	}
}
