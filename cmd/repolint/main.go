// Command repolint runs the repository's static-analysis suite (see
// internal/lint). It is dual-mode:
//
//	repolint ./...                                 standalone
//	go vet -vettool=$(command -v repolint) ./...   as a vet tool
//
// The standalone mode re-execs go vet against itself, so both paths
// run the identical protocol and produce identical findings. Exit
// codes: 0 clean, 1 operational failure, nonzero on findings.
package main

import "repro/internal/lint"

func main() { lint.Main() }
