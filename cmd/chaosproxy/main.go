// Command chaosproxy relays TCP connections to a target with injected
// faults — per-connection delay and periodic resets — so smoke tests
// can put a degraded network between a real coordinator process and
// real worker processes (see the CI chaos-smoke job).
//
// Usage:
//
//	chaosproxy -listen 127.0.0.1:8425 -target 127.0.0.1:8420 [-delay 150ms] [-reset-every 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/registry/chaostest"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to accept connections on")
	target := flag.String("target", "", "address to relay connections to")
	delay := flag.Duration("delay", 0, "added latency per connection, before any bytes flow")
	resetEvery := flag.Int("reset-every", 0, "abruptly close every Nth connection (0 = never)")
	flag.Parse()
	if *target == "" || flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	p, err := chaostest.NewProxy(*listen, *target, chaostest.ProxyOptions{
		Delay:      *delay,
		ResetEvery: *resetEvery,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosproxy: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chaosproxy: %s -> %s (delay %v, reset every %d)\n", p.Addr(), *target, *delay, *resetEvery)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := p.Serve(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "chaosproxy: %v\n", err)
		os.Exit(1)
	}
}
