package main

import (
	"errors"
	"strings"
	"testing"
)

// TestSingularityModelCell smoke-tests the default path: a model-mode
// Singularity cell on Lenox, printing every section of the breakdown.
func TestSingularityModelCell(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{
		"-cluster", "Lenox", "-runtime", "Singularity",
		"-case", "quick-cfd", "-nodes", "2", "-ranks", "8",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cell: Lenox / Singularity (system-specific) / quick-cfd",
		"image:", "deploy:", "fabric:", "launch:", "time/step:", "elapsed:", "mpi:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "solver:") {
		t.Error("model mode printed the real-numerics solver line")
	}
}

// TestBareMetalRealCell covers the bare-metal + ModeReal path: no
// image line, solver diagnostics present.
func TestBareMetalRealCell(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{
		"-cluster", "Lenox", "-runtime", "Bare-metal",
		"-case", "quick-cfd", "-mode", "real", "-nodes", "2", "-ranks", "8", "-steps", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "image:") {
		t.Error("bare metal printed an image line")
	}
	if !strings.Contains(out, "solver:") {
		t.Errorf("real mode missing solver diagnostics:\n%s", out)
	}
	if !strings.Contains(out, "(2 steps)") {
		t.Errorf("-steps override not applied:\n%s", out)
	}
}

// TestBadArguments asserts every enum flag rejects unknown values with
// an error instead of running a half-configured cell.
func TestBadArguments(t *testing.T) {
	cases := [][]string{
		{"-cluster", "Summit"},
		{"-runtime", "Podman"},
		{"-kind", "static"},
		{"-case", "lid-cavity"},
		{"-mode", "hybrid"},
		{"-allreduce", "butterfly"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(&sb, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestParseErrorIsUsage asserts malformed flag syntax is classified
// as a usage error (exit 2 in main), distinct from runtime failures.
func TestParseErrorIsUsage(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-nodes", "many"})
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("want usageError, got %T: %v", err, err)
	}
}

// TestDockerNeedsRoot asserts a runtime/cluster mismatch surfaces as
// an error through the CLI path.
func TestDockerNeedsRoot(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-cluster", "MareNostrum4", "-runtime", "Docker", "-nodes", "2", "-ranks", "8"})
	if err == nil || !strings.Contains(err.Error(), "administrative rights") {
		t.Fatalf("want needs-root error, got %v", err)
	}
}
