// Command alyasim runs a single simulation cell — one (cluster,
// runtime, image technique, case, configuration) combination — and
// prints its deployment and execution breakdown.
//
// Examples:
//
//	alyasim -cluster MareNostrum4 -runtime Singularity -kind self-contained \
//	        -case fsi-mn4 -nodes 16 -threads 1
//	alyasim -cluster Lenox -runtime Docker -case cfd-lenox -nodes 4 -ranks 56 -threads 2
//	alyasim -cluster Lenox -runtime Bare-metal -case quick-cfd -mode real -nodes 2 -ranks 8
package main

import (
	"flag"
	"fmt"
	"os"

	containerhpc "repro"
)

func main() {
	var (
		clusterName = flag.String("cluster", "Lenox", "Lenox | MareNostrum4 | CTE-POWER | ThunderX")
		runtimeName = flag.String("runtime", "Singularity", "Bare-metal | Docker | Singularity | Shifter")
		kindName    = flag.String("kind", "system-specific", "system-specific | self-contained")
		caseName    = flag.String("case", "quick-cfd", "cfd-lenox | cfd-ctepower | fsi-mn4 | quick-cfd | quick-fsi")
		nodes       = flag.Int("nodes", 2, "allocation size in nodes")
		ranks       = flag.Int("ranks", 0, "MPI ranks (default nodes × cores/node ÷ threads)")
		threads     = flag.Int("threads", 1, "OpenMP threads per rank")
		modeName    = flag.String("mode", "model", "model | real")
		algoName    = flag.String("allreduce", "recursive-doubling", "recursive-doubling | ring | reduce+bcast | hierarchical")
		steps       = flag.Int("steps", 0, "override simulated steps (0 = case default)")
	)
	flag.Parse()

	cl, err := containerhpc.ClusterByName(*clusterName)
	fatal(err)
	rt, err := containerhpc.RuntimeByName(*runtimeName)
	fatal(err)

	kind := containerhpc.SystemSpecific
	switch *kindName {
	case "system-specific":
	case "self-contained":
		kind = containerhpc.SelfContained
	default:
		fatal(fmt.Errorf("unknown build kind %q", *kindName))
	}

	var cs containerhpc.Case
	switch *caseName {
	case "cfd-lenox":
		cs = containerhpc.ArteryCFDLenox()
	case "cfd-ctepower":
		cs = containerhpc.ArteryCFDCTEPower()
	case "fsi-mn4":
		cs = containerhpc.ArteryFSIMareNostrum4()
	case "quick-cfd":
		cs = containerhpc.QuickCFD(5)
	case "quick-fsi":
		cs = containerhpc.QuickFSI(5)
	default:
		fatal(fmt.Errorf("unknown case %q", *caseName))
	}
	if *steps > 0 {
		cs.Steps = *steps
		if cs.SimSteps > *steps {
			cs.SimSteps = *steps
		}
	}

	mode := containerhpc.ModeModel
	if *modeName == "real" {
		mode = containerhpc.ModeReal
	}

	var algo containerhpc.AllreduceAlgo
	switch *algoName {
	case "recursive-doubling":
		algo = containerhpc.AllreduceRecursiveDoubling
	case "ring":
		algo = containerhpc.AllreduceRing
	case "reduce+bcast":
		algo = containerhpc.AllreduceReduceBcast
	case "hierarchical":
		algo = containerhpc.AllreduceHierarchical
	default:
		fatal(fmt.Errorf("unknown allreduce algorithm %q", *algoName))
	}

	r := *ranks
	if r == 0 {
		r = *nodes * cl.CoresPerNode() / *threads
	}

	img, err := containerhpc.BuildImage(rt, cl, kind)
	fatal(err)

	res, err := containerhpc.RunCell(containerhpc.Cell{
		Cluster: cl, Runtime: rt, Image: img, Case: cs,
		Nodes: *nodes, Ranks: r, Threads: *threads,
		Placement: containerhpc.PlaceBlock, Mode: mode, Allreduce: algo,
	})
	fatal(err)

	fmt.Printf("cell: %s / %s (%s) / %s  —  %d nodes × %d ranks × %d threads [%v]\n",
		cl.Name, rt.Name(), *kindName, cs.Name, *nodes, r, *threads, mode)
	if img != nil {
		fmt.Printf("image:      %s  %v (%v compressed, %s)\n",
			img.Ref(), img.Size(), img.CompressedSize(), img.Format)
	}
	fmt.Printf("deploy:     total %v  (pull %v, convert %v, stage %v, start %v)\n",
		res.Deploy.Total(), res.Deploy.PullTime, res.Deploy.ConvertTime,
		res.Deploy.StageTime, res.Deploy.StartTime)
	fmt.Printf("fabric:     %s\n", res.Exec.FabricPath)
	fmt.Printf("launch:     %v\n", res.Exec.LaunchTime)
	fmt.Printf("time/step:  %v\n", res.Exec.TimePerStep)
	fmt.Printf("elapsed:    %v  (%d steps)\n", res.Exec.Elapsed, cs.Steps)
	fmt.Printf("mpi:        %d messages, %v payload, max comm %v\n",
		res.Exec.MPI.TotalMessages, res.Exec.MPI.TotalBytes, res.Exec.MPI.MaxCommTime)
	if mode == containerhpc.ModeReal {
		fmt.Printf("solver:     avg CG iters/step %.1f, final max|div u| %.3e\n",
			res.Exec.AvgCGIters, res.Exec.MaxDivergence)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alyasim:", err)
		os.Exit(1)
	}
}
