// Command alyasim runs a single simulation cell — one (cluster,
// runtime, image technique, case, configuration) combination — and
// prints its deployment and execution breakdown.
//
// Examples:
//
//	alyasim -cluster MareNostrum4 -runtime Singularity -kind self-contained \
//	        -case fsi-mn4 -nodes 16 -threads 1
//	alyasim -cluster Lenox -runtime Docker -case cfd-lenox -nodes 4 -ranks 56 -threads 2
//	alyasim -cluster Lenox -runtime Bare-metal -case quick-cfd -mode real -nodes 2 -ranks 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	containerhpc "repro"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0) // -h: the FlagSet printed the usage; not a failure
		}
		var ue usageError
		if errors.As(err, &ue) {
			// The FlagSet already printed the parse error and usage.
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "alyasim:", err)
		os.Exit(1)
	}
}

// usageError marks flag-parse failures the FlagSet has already
// reported to stderr; main answers them with exit code 2 and no
// duplicate message.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }

// Unwrap exposes the underlying cause (flag.ErrHelp in particular).
func (e usageError) Unwrap() error { return e.err }

// run is the whole CLI behind the process boundary: parse args,
// execute the cell, print the breakdown into w. Tests drive it
// directly.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("alyasim", flag.ContinueOnError)
	var (
		clusterName = fs.String("cluster", "Lenox", "Lenox | MareNostrum4 | CTE-POWER | ThunderX")
		runtimeName = fs.String("runtime", "Singularity", "Bare-metal | Docker | Singularity | Shifter")
		kindName    = fs.String("kind", "system-specific", "system-specific | self-contained")
		caseName    = fs.String("case", "quick-cfd", "cfd-lenox | cfd-ctepower | fsi-mn4 | quick-cfd | quick-fsi")
		nodes       = fs.Int("nodes", 2, "allocation size in nodes")
		ranks       = fs.Int("ranks", 0, "MPI ranks (default nodes × cores/node ÷ threads)")
		threads     = fs.Int("threads", 1, "OpenMP threads per rank")
		modeName    = fs.String("mode", "model", "model | real")
		algoName    = fs.String("allreduce", "recursive-doubling", "recursive-doubling | ring | reduce+bcast | hierarchical")
		steps       = fs.Int("steps", 0, "override simulated steps (0 = case default)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}

	cl, err := containerhpc.ClusterByName(*clusterName)
	if err != nil {
		return err
	}
	rt, err := containerhpc.RuntimeByName(*runtimeName)
	if err != nil {
		return err
	}

	kind := containerhpc.SystemSpecific
	switch *kindName {
	case "system-specific":
	case "self-contained":
		kind = containerhpc.SelfContained
	default:
		return fmt.Errorf("unknown build kind %q", *kindName)
	}

	var cs containerhpc.Case
	switch *caseName {
	case "cfd-lenox":
		cs = containerhpc.ArteryCFDLenox()
	case "cfd-ctepower":
		cs = containerhpc.ArteryCFDCTEPower()
	case "fsi-mn4":
		cs = containerhpc.ArteryFSIMareNostrum4()
	case "quick-cfd":
		cs = containerhpc.QuickCFD(5)
	case "quick-fsi":
		cs = containerhpc.QuickFSI(5)
	default:
		return fmt.Errorf("unknown case %q", *caseName)
	}
	if *steps > 0 {
		cs.Steps = *steps
		if cs.SimSteps > *steps {
			cs.SimSteps = *steps
		}
	}

	mode := containerhpc.ModeModel
	switch *modeName {
	case "model":
	case "real":
		mode = containerhpc.ModeReal
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	var algo containerhpc.AllreduceAlgo
	switch *algoName {
	case "recursive-doubling":
		algo = containerhpc.AllreduceRecursiveDoubling
	case "ring":
		algo = containerhpc.AllreduceRing
	case "reduce+bcast":
		algo = containerhpc.AllreduceReduceBcast
	case "hierarchical":
		algo = containerhpc.AllreduceHierarchical
	default:
		return fmt.Errorf("unknown allreduce algorithm %q", *algoName)
	}

	r := *ranks
	if r == 0 {
		r = *nodes * cl.CoresPerNode() / *threads
	}

	img, err := containerhpc.BuildImage(rt, cl, kind)
	if err != nil {
		return err
	}

	res, err := containerhpc.RunCell(containerhpc.Cell{
		Cluster: cl, Runtime: rt, Image: img, Case: cs,
		Nodes: *nodes, Ranks: r, Threads: *threads,
		Placement: containerhpc.PlaceBlock, Mode: mode, Allreduce: algo,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "cell: %s / %s (%s) / %s  —  %d nodes × %d ranks × %d threads [%v]\n",
		cl.Name, rt.Name(), *kindName, cs.Name, *nodes, r, *threads, mode)
	if img != nil {
		fmt.Fprintf(w, "image:      %s  %v (%v compressed, %s)\n",
			img.Ref(), img.Size(), img.CompressedSize(), img.Format)
	}
	fmt.Fprintf(w, "deploy:     total %v  (pull %v, convert %v, stage %v, start %v)\n",
		res.Deploy.Total(), res.Deploy.PullTime, res.Deploy.ConvertTime,
		res.Deploy.StageTime, res.Deploy.StartTime)
	fmt.Fprintf(w, "fabric:     %s\n", res.Exec.FabricPath)
	fmt.Fprintf(w, "launch:     %v\n", res.Exec.LaunchTime)
	fmt.Fprintf(w, "time/step:  %v\n", res.Exec.TimePerStep)
	fmt.Fprintf(w, "elapsed:    %v  (%d steps)\n", res.Exec.Elapsed, cs.Steps)
	fmt.Fprintf(w, "mpi:        %d messages, %v payload, max comm %v\n",
		res.Exec.MPI.TotalMessages, res.Exec.MPI.TotalBytes, res.Exec.MPI.MaxCommTime)
	if mode == containerhpc.ModeReal {
		fmt.Fprintf(w, "solver:     avg CG iters/step %.1f, final max|div u| %.3e\n",
			res.Exec.AvgCGIters, res.Exec.MaxDivergence)
	}
	return nil
}
