// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON artifact on stdout — the per-commit perf record
// the CI bench job uploads as BENCH_<sha>.json. Each benchmark maps to
// its wall cost (ns/op) plus every custom metric the benchmark
// reported (sim_s/step, ns/switch, speedup, ...), so the artifact
// doubles as a summary of the reproduction's simulated headline
// numbers alongside the harness's own performance trajectory.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_$(git rev-parse HEAD).json
//	benchjson compare [-threshold 0.10] [-floor NS] [-cv F] old.json new.json
//
// Repeated runs of the same benchmark (`go test -count N`) fold into
// one entry holding the minimum ns/op — timing noise on shared
// runners is strictly additive, so the min is the estimate of the
// true cost — with a `samples` count recording N and benchstat-style
// variance statistics (mean/median/stddev/CV over the runs) so a
// later comparison can judge how trustworthy the min is. compare
// diffs two artifacts benchmark by benchmark and exits non-zero when
// any shared benchmark's ns/op regressed past the threshold (a
// fraction: 0.10 = +10%) AND by more than the noise floor (-floor,
// absolute nanoseconds; sub-floor movement on a nanosecond-scale
// benchmark is scheduler jitter, not a regression), so the CI bench
// job can gate on a committed baseline. -cv F additionally flags
// benchmarks whose recorded coefficient of variation exceeds F as
// HIGH VARIANCE — advisory only, never gating: it says the gate's
// threshold may need widening before trusting a pass or a fail.
// Benchmarks present in only one artifact are reported but never
// gate — renames must not fail CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark identifier including the GOMAXPROCS
	// suffix, e.g. "BenchmarkPingPongSync-8".
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional "value unit" pair the benchmark
	// reported, keyed by unit (e.g. "sim_s/step", "ns/switch").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples counts the runs folded into this entry when the bench
	// stream repeated the benchmark (`go test -count N`); the entry
	// keeps the fastest run. Zero or absent means a single run.
	Samples int `json:"samples,omitempty"`
	// Variance statistics over the folded ns/op observations, absent
	// for single runs. MeanNs/MedianNs/StddevNs are in nanoseconds
	// (stddev is the sample standard deviation, n−1); CV is the
	// coefficient of variation, stddev/mean — the scale-free noise
	// measure `compare -cv` warns on.
	MeanNs   float64 `json:"mean_ns,omitempty"`
	MedianNs float64 `json:"median_ns,omitempty"`
	StddevNs float64 `json:"stddev_ns,omitempty"`
	CV       float64 `json:"cv,omitempty"`
}

// Report is the artifact's top-level shape.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		regressed, err := runCompare(os.Stdout, os.Args[2:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if regressed > 0 {
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runCompare parses `compare [-threshold F] old.json new.json` (the
// flag may also trail the files) and reports the regression count.
func runCompare(w io.Writer, args []string) (int, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	threshold := fs.Float64("threshold", 0.10, "ns/op regression fraction that fails the comparison")
	floor := fs.Float64("floor", 0, "absolute ns/op increase below which a regression never gates (noise floor)")
	cv := fs.Float64("cv", 0, "coefficient-of-variation bound; benchmarks noisier than this are flagged HIGH VARIANCE (advisory, never gates)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	rest := fs.Args()
	if len(rest) > 2 {
		// Trailing flags: `compare old.json new.json -threshold 0.10`.
		if err := fs.Parse(rest[2:]); err != nil {
			return 0, err
		}
		if fs.NArg() != 0 {
			return 0, fmt.Errorf("compare takes exactly two artifacts, got %q", append(rest[:2], fs.Args()...))
		}
		rest = rest[:2]
	}
	if len(rest) != 2 {
		return 0, fmt.Errorf("usage: benchjson compare [-threshold F] [-floor NS] old.json new.json")
	}
	if *threshold <= 0 {
		return 0, fmt.Errorf("-threshold must be positive, got %v", *threshold)
	}
	if *floor < 0 {
		return 0, fmt.Errorf("-floor must be ≥ 0, got %v", *floor)
	}
	if *cv < 0 {
		return 0, fmt.Errorf("-cv must be ≥ 0, got %v", *cv)
	}
	oldRep, err := loadReport(rest[0])
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(rest[1])
	if err != nil {
		return 0, err
	}
	return compareReports(w, oldRep, newRep, *threshold, *floor, *cv), nil
}

// loadReport reads one benchjson artifact.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rep.Benchmarks = foldMin(rep.Benchmarks)
	return &rep, nil
}

// foldMin collapses repeated runs of one benchmark (`go test -count N`
// emits one result line each) into its fastest observation. Timing
// noise on a shared runner only ever adds time, so the min-of-N is the
// estimate of the true cost; Samples records how many runs folded, and
// mean/median/stddev/CV over the observations quantify the noise so a
// comparison can judge whether the min itself is trustworthy.
func foldMin(list []Benchmark) []Benchmark {
	idx := make(map[string]int, len(list))
	obs := make(map[string][]float64, len(list))
	out := make([]Benchmark, 0, len(list))
	for _, b := range list {
		key := benchKey(b)
		obs[key] = append(obs[key], b.NsPerOp)
		i, seen := idx[key]
		if !seen {
			idx[key] = len(out)
			out = append(out, b)
			continue
		}
		if b.NsPerOp < out[i].NsPerOp {
			out[i] = b
		}
	}
	for i := range out {
		runs := obs[benchKey(out[i])]
		if len(runs) < 2 {
			// A single observation carries whatever Samples/stats the
			// input already had (re-folding a folded artifact is a no-op).
			continue
		}
		out[i].Samples = len(runs)
		out[i].MeanNs, out[i].MedianNs, out[i].StddevNs, out[i].CV = runStats(runs)
	}
	return out
}

// runStats summarises the ns/op observations of one benchmark: mean,
// median, sample standard deviation (n−1), and the coefficient of
// variation stddev/mean (0 when the mean is not positive).
func runStats(runs []float64) (mean, median, stddev, cv float64) {
	sorted := append([]float64(nil), runs...)
	sort.Float64s(sorted)
	for _, v := range sorted {
		mean += v
	}
	n := len(sorted)
	mean /= float64(n)
	if n%2 == 1 {
		median = sorted[n/2]
	} else {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var ss float64
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	stddev = math.Sqrt(ss / float64(n-1))
	if mean > 0 {
		cv = stddev / mean
	}
	return mean, median, stddev, cv
}

// benchKey identifies a benchmark within one artifact.
func benchKey(b Benchmark) string { return b.Pkg + "\t" + b.Name }

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// strippedKey drops a trailing "-<digits>" (the GOMAXPROCS suffix)
// from the key. Used only as a matching fallback: a benchmark's own
// name can also end in digits, so exact matches always win and an
// ambiguous stripped key is never used.
func strippedKey(b Benchmark) string {
	key := benchKey(b)
	if i := strings.LastIndexByte(key, '-'); i > 0 {
		if _, err := strconv.Atoi(key[i+1:]); err == nil {
			return key[:i]
		}
	}
	return key
}

// compareReports diffs shared benchmarks on ns/op and returns how
// many regressed past the threshold by more than floor absolute
// nanoseconds. Every shared benchmark is listed, worst first, so CI
// logs show the whole movement, not only the failures; new-only and
// vanished benchmarks are counted but never gate. A positive cvBound
// additionally flags benchmarks whose recorded coefficient of
// variation (either side) exceeds it — advisory only, because a noisy
// benchmark's min-of-N is still its best estimate; the flag says the
// gate's threshold may need widening, not that the run regressed.
func compareReports(w io.Writer, oldRep, newRep *Report, threshold, floor, cvBound float64) int {
	// Exact-name matches first; a stripped-suffix fallback bridges
	// baselines from runners with different core counts ("-4" vs
	// "-8") without ever conflating distinct benchmarks — a stripped
	// key shared by several old entries is ambiguous and unused.
	olds := make(map[string]Benchmark, len(oldRep.Benchmarks))
	stripped := make(map[string][]string)
	for _, b := range oldRep.Benchmarks {
		olds[benchKey(b)] = b
		stripped[strippedKey(b)] = append(stripped[strippedKey(b)], benchKey(b))
	}
	match := func(b Benchmark) (string, bool) {
		if _, ok := olds[benchKey(b)]; ok {
			return benchKey(b), true
		}
		if cands := stripped[strippedKey(b)]; len(cands) == 1 {
			if _, ok := olds[cands[0]]; ok {
				return cands[0], true
			}
		}
		return "", false
	}
	type row struct {
		b         Benchmark
		oldNs     float64
		delta     float64
		cv        float64
		regressed bool
	}
	var rows []row
	added := 0
	for _, b := range newRep.Benchmarks {
		oldKey, ok := match(b)
		if !ok {
			added++
			continue
		}
		o := olds[oldKey]
		delete(olds, oldKey)
		if o.NsPerOp <= 0 {
			continue
		}
		delta := b.NsPerOp/o.NsPerOp - 1
		rows = append(rows, row{b: b, oldNs: o.NsPerOp, delta: delta,
			cv:        maxFloat(o.CV, b.CV),
			regressed: delta > threshold && b.NsPerOp-o.NsPerOp > floor})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].delta > rows[j].delta })

	regressed, noisy := 0, 0
	for _, r := range rows {
		mark := ""
		if r.regressed {
			regressed++
			mark = fmt.Sprintf("  REGRESSED (> +%.1f%%)", threshold*100)
		}
		if cvBound > 0 && r.cv > cvBound {
			noisy++
			mark += fmt.Sprintf("  HIGH VARIANCE (cv %.1f%% > %.1f%%)", r.cv*100, cvBound*100)
		}
		fmt.Fprintf(w, "%-48s %12.1f -> %12.1f ns/op  %+7.1f%%%s\n",
			r.b.Name+" ("+r.b.Pkg+")", r.oldNs, r.b.NsPerOp, r.delta*100, mark)
	}
	if noisy > 0 {
		fmt.Fprintf(w, "warning: %d of %d shared benchmarks exceed the %.1f%% CV bound — their deltas are noise-dominated (advisory, does not gate)\n",
			noisy, len(rows), cvBound*100)
	}
	if len(rows) == 0 && len(oldRep.Benchmarks) > 0 && len(newRep.Benchmarks) > 0 {
		fmt.Fprintf(w, "warning: no shared benchmarks between the artifacts — the comparison checked nothing\n")
	}
	if floor > 0 {
		fmt.Fprintf(w, "%d of %d shared benchmarks regressed past +%.1f%% and the %.0f ns floor (%d added, %d vanished)\n",
			regressed, len(rows), threshold*100, floor, added, len(olds))
	} else {
		fmt.Fprintf(w, "%d of %d shared benchmarks regressed past +%.1f%% (%d added, %d vanished)\n",
			regressed, len(rows), threshold*100, added, len(olds))
	}
	return regressed
}

// run parses bench output from r and writes the JSON report to w.
func run(r io.Reader, w io.Writer) error {
	rep, err := parse(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse walks the bench output line by line: "pkg:" headers set the
// current package, "Benchmark..." result lines append entries, and
// everything else (goos/goarch headers, PASS/ok trailers, test logs)
// is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseResultLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if ok {
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	rep.Benchmarks = foldMin(rep.Benchmarks)
	return rep, sc.Err()
}

// parseResultLine parses "BenchmarkX-8  100  123 ns/op  4.5 unit ..."
// into a Benchmark. Lines without an iteration count (a benchmark name
// echoed alone, e.g. when it failed) report ok=false.
func parseResultLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // "BenchmarkX" alone or a log line
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The rest are "value unit" pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("odd value/unit pairing")
	}
	for i := 0; i < len(rest); i += 2 {
		val, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("value %q: %w", rest[i], err)
		}
		unit := rest[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	return b, true, nil
}
