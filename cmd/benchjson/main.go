// Command benchjson converts `go test -bench` text output on stdin
// into a stable JSON artifact on stdout — the per-commit perf record
// the CI bench job uploads as BENCH_<sha>.json. Each benchmark maps to
// its wall cost (ns/op) plus every custom metric the benchmark
// reported (sim_s/step, ns/switch, speedup, ...), so the artifact
// doubles as a summary of the reproduction's simulated headline
// numbers alongside the harness's own performance trajectory.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_$(git rev-parse HEAD).json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark identifier including the GOMAXPROCS
	// suffix, e.g. "BenchmarkPingPongSync-8".
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in.
	Pkg string `json:"pkg"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional "value unit" pair the benchmark
	// reported, keyed by unit (e.g. "sim_s/step", "ns/switch").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the artifact's top-level shape.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// run parses bench output from r and writes the JSON report to w.
func run(r io.Reader, w io.Writer) error {
	rep, err := parse(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parse walks the bench output line by line: "pkg:" headers set the
// current package, "Benchmark..." result lines append entries, and
// everything else (goos/goarch headers, PASS/ok trailers, test logs)
// is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseResultLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if ok {
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseResultLine parses "BenchmarkX-8  100  123 ns/op  4.5 unit ..."
// into a Benchmark. Lines without an iteration count (a benchmark name
// echoed alone, e.g. when it failed) report ok=false.
func parseResultLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil // "BenchmarkX" alone or a log line
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The rest are "value unit" pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("odd value/unit pairing")
	}
	for i := 0; i < len(rest); i += 2 {
		val, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("value %q: %w", rest[i], err)
		}
		unit := rest[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	return b, true, nil
}
