package main

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleOutput is a trimmed, representative `go test -bench` stream:
// two packages, custom metrics, a sub-benchmark, and trailer noise.
const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkFig1Lenox-8                   	       1	47307636 ns/op	        12.35 docker_overhead_pct
BenchmarkAblationPlacement/block-8     	       2	 5010203 ns/op	         0.375 sim_s/step
PASS
ok  	repro	12.345s
pkg: repro/internal/vtime
BenchmarkPingPongSync-8                	  300000	       441.0 ns/op	       220.5 ns/switch
ok  	repro/internal/vtime	0.5s
`

func TestParseBenchOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader(sampleOutput), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3:\n%s", len(rep.Benchmarks), sb.String())
	}

	fig1 := rep.Benchmarks[0]
	if fig1.Name != "BenchmarkFig1Lenox-8" || fig1.Pkg != "repro" {
		t.Fatalf("first benchmark misparsed: %+v", fig1)
	}
	if fig1.Iterations != 1 || fig1.NsPerOp != 47307636 {
		t.Fatalf("fig1 numbers misparsed: %+v", fig1)
	}
	if fig1.Metrics["docker_overhead_pct"] != 12.35 {
		t.Fatalf("fig1 custom metric lost: %+v", fig1.Metrics)
	}

	sub := rep.Benchmarks[1]
	if sub.Name != "BenchmarkAblationPlacement/block-8" || sub.Metrics["sim_s/step"] != 0.375 {
		t.Fatalf("sub-benchmark misparsed: %+v", sub)
	}

	pp := rep.Benchmarks[2]
	if pp.Pkg != "repro/internal/vtime" {
		t.Fatalf("package header not tracked across packages: %+v", pp)
	}
	if pp.NsPerOp != 441.0 || pp.Metrics["ns/switch"] != 220.5 {
		t.Fatalf("vtime metrics misparsed: %+v", pp)
	}
}

func TestParseEmptyAndNoise(t *testing.T) {
	var sb strings.Builder
	noise := "PASS\nok  \trepro\t1.0s\nBenchmarkBroken\n--- FAIL: TestX\n"
	if err := run(strings.NewReader(noise), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
	if !strings.Contains(sb.String(), `"benchmarks": []`) {
		t.Fatalf("empty report must keep an empty array, got:\n%s", sb.String())
	}
}

// writeArtifact marshals a report to a temp file.
func writeArtifact(t *testing.T, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(pkg, name string, ns float64) Benchmark {
	return Benchmark{Name: name, Pkg: pkg, Iterations: 1, NsPerOp: ns}
}

// TestCompareFlagsRegressions asserts the compare mode's gate: a
// shared benchmark past the threshold counts, movement within it and
// unmatched benchmarks do not, and improvements never gate.
func TestCompareFlagsRegressions(t *testing.T) {
	oldPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("repro/internal/vtime", "BenchmarkPingPongSync-8", 200),
		bench("repro/internal/vtime", "BenchmarkBarrierWakeAll-8", 1000),
		bench("repro", "BenchmarkVanished-8", 50),
	}})
	newPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("repro/internal/vtime", "BenchmarkPingPongSync-8", 250),   // +25%: regressed
		bench("repro/internal/vtime", "BenchmarkBarrierWakeAll-8", 900), // -10%: improved
		bench("repro", "BenchmarkAdded-8", 75),
	}})

	var out strings.Builder
	regressed, err := runCompare(&out, []string{"-threshold", "0.10", oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", regressed, out.String())
	}
	for _, want := range []string{
		"BenchmarkPingPongSync-8", "REGRESSED",
		"1 of 2 shared benchmarks regressed past +10.0% (1 added, 1 vanished)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("compare output missing %q:\n%s", want, out.String())
		}
	}

	// A looser threshold admits the same movement; flags may trail.
	out.Reset()
	regressed, err = runCompare(&out, []string{oldPath, newPath, "-threshold", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Fatalf("0.5 threshold flagged %d regressions:\n%s", regressed, out.String())
	}
}

// TestCompareUsage asserts malformed invocations error instead of
// silently passing CI.
func TestCompareUsage(t *testing.T) {
	good := writeArtifact(t, &Report{Benchmarks: []Benchmark{bench("p", "B-8", 1)}})
	for _, args := range [][]string{
		{},
		{good},
		{good, good, "extra"},
		{"-threshold", "-1", good, good},
		{good, filepath.Join(t.TempDir(), "missing.json")},
	} {
		if _, err := runCompare(io.Discard, args); err == nil {
			t.Errorf("args %q accepted", args)
		}
	}
}

// TestCompareAcrossCoreCounts asserts the GOMAXPROCS suffix does not
// partition the comparison: a baseline from a 4-core runner still
// gates a run from an 8-core one.
func TestCompareAcrossCoreCounts(t *testing.T) {
	oldPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("repro/internal/vtime", "BenchmarkPingPongSync-4", 200),
	}})
	newPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("repro/internal/vtime", "BenchmarkPingPongSync-8", 300),
	}})
	var out strings.Builder
	regressed, err := runCompare(&out, []string{oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("suffix mismatch hid the regression:\n%s", out.String())
	}
	if strings.Contains(out.String(), "no shared benchmarks") {
		t.Fatalf("spurious no-overlap warning:\n%s", out.String())
	}

	// Genuinely disjoint artifacts warn instead of passing silently.
	disjoint := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("repro", "BenchmarkOther-8", 100),
	}})
	out.Reset()
	if _, err := runCompare(&out, []string{oldPath, disjoint}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no shared benchmarks") {
		t.Fatalf("disjoint artifacts compared without a warning:\n%s", out.String())
	}
}

// TestCompareExactNameBeatsStripping asserts the suffix fallback
// never conflates benchmarks whose own names end in digits: exact
// matches win, and an ambiguous stripped key is left unmatched.
func TestCompareExactNameBeatsStripping(t *testing.T) {
	oldPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkSweep/n-100", 100),
		bench("p", "BenchmarkSweep/n-200", 200),
	}})
	newPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkSweep/n-100", 500), // 5×: must gate against its own baseline
		bench("p", "BenchmarkSweep/n-200", 200),
	}})
	var out strings.Builder
	regressed, err := runCompare(&out, []string{oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("exact-name matching failed (%d regressions):\n%s", regressed, out.String())
	}
	if !strings.Contains(out.String(), "2 shared benchmarks") {
		t.Fatalf("digit-suffixed names conflated:\n%s", out.String())
	}
}

// TestFoldMinOfN: `go test -count N` repeats each benchmark line; the
// artifact keeps one entry per benchmark holding the fastest run, with
// a sample count, so a committed baseline is a min-of-N measurement.
func TestFoldMinOfN(t *testing.T) {
	stream := `pkg: repro/internal/vtime
BenchmarkPingPongSync-8  100  441.0 ns/op  220.5 ns/switch
BenchmarkPingPongSync-8  100  350.0 ns/op  175.0 ns/switch
BenchmarkPingPongSync-8  100  512.0 ns/op  256.0 ns/switch
BenchmarkSyncFastPath-8  100  20.0 ns/op
`
	var sb strings.Builder
	if err := run(strings.NewReader(stream), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("folded to %d entries, want 2:\n%s", len(rep.Benchmarks), sb.String())
	}
	pp := rep.Benchmarks[0]
	if pp.NsPerOp != 350.0 || pp.Samples != 3 {
		t.Fatalf("min-of-3 fold kept %+v", pp)
	}
	if pp.Metrics["ns/switch"] != 175.0 {
		t.Fatalf("fold must keep the fastest run's metrics: %+v", pp.Metrics)
	}
	// Variance statistics over {441, 350, 512}.
	wantMean := (441.0 + 350.0 + 512.0) / 3
	if math.Abs(pp.MeanNs-wantMean) > 1e-9 || pp.MedianNs != 441.0 {
		t.Fatalf("fold stats: mean %v median %v, want %v / 441", pp.MeanNs, pp.MedianNs, wantMean)
	}
	if pp.StddevNs <= 0 || math.Abs(pp.CV-pp.StddevNs/pp.MeanNs) > 1e-12 {
		t.Fatalf("fold stats: stddev %v cv %v", pp.StddevNs, pp.CV)
	}
	if fast := rep.Benchmarks[1]; fast.Samples != 0 || fast.MeanNs != 0 || fast.CV != 0 {
		t.Fatalf("single run grew a sample count or stats: %+v", fast)
	}

	// loadReport folds too, so a hand-concatenated artifact still
	// compares as min-of-N.
	path := filepath.Join(t.TempDir(), "dup.json")
	dup := &Report{Benchmarks: []Benchmark{
		bench("p", "B-8", 300),
		bench("p", "B-8", 100),
		bench("p", "B-8", 200),
	}}
	data, err := json.Marshal(dup)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 100 || got.Benchmarks[0].Samples != 3 {
		t.Fatalf("loadReport fold = %+v", got.Benchmarks)
	}
}

// TestCompareCVAdvisory: `compare -cv` flags benchmarks whose recorded
// coefficient of variation (either artifact's side) exceeds the bound,
// but the flag is advisory — it never changes the regression count or
// the exit status.
func TestCompareCVAdvisory(t *testing.T) {
	noisy := bench("p", "BenchmarkNoisy-8", 100)
	noisy.Samples, noisy.CV = 5, 0.40
	quiet := bench("p", "BenchmarkQuiet-8", 100)
	quiet.Samples, quiet.CV = 5, 0.01
	oldPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{noisy, quiet}})
	noisyNew := bench("p", "BenchmarkNoisy-8", 105)
	quietNew := bench("p", "BenchmarkQuiet-8", 105)
	newPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{noisyNew, quietNew}})

	var out strings.Builder
	regressed, err := runCompare(&out, []string{"-cv", "0.10", oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Fatalf("advisory CV flag gated (%d regressions):\n%s", regressed, out.String())
	}
	for _, want := range []string{
		"HIGH VARIANCE (cv 40.0% > 10.0%)",
		"1 of 2 shared benchmarks exceed the 10.0% CV bound",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("compare output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Count(out.String(), "HIGH VARIANCE") != 1 {
		t.Fatalf("quiet benchmark flagged too:\n%s", out.String())
	}

	// Without -cv the same artifacts print no variance warnings, and a
	// negative bound is rejected.
	out.Reset()
	if _, err := runCompare(&out, []string{oldPath, newPath}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "HIGH VARIANCE") {
		t.Fatalf("CV warning without -cv:\n%s", out.String())
	}
	if _, err := runCompare(io.Discard, []string{"-cv", "-0.1", oldPath, newPath}); err == nil {
		t.Error("negative -cv accepted")
	}
}

// TestCompareNoiseFloor: a relative regression on a nanosecond-scale
// benchmark stays below the absolute floor and must not gate, while
// the same relative movement above the floor still does.
func TestCompareNoiseFloor(t *testing.T) {
	oldPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkTiny-8", 20),       // +50% is 10 ns: jitter
		bench("p", "BenchmarkBig-8", 1_000_000), // +50% is 500 µs: real
	}})
	newPath := writeArtifact(t, &Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkTiny-8", 30),
		bench("p", "BenchmarkBig-8", 1_500_000),
	}})
	var out strings.Builder
	regressed, err := runCompare(&out, []string{"-threshold", "0.25", "-floor", "1000", oldPath, newPath})
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 1 {
		t.Fatalf("want only the big benchmark to gate, got %d:\n%s", regressed, out.String())
	}
	if !strings.Contains(out.String(), "1000 ns floor") {
		t.Fatalf("summary does not state the floor:\n%s", out.String())
	}
	if _, err := runCompare(io.Discard, []string{"-floor", "-1", oldPath, newPath}); err == nil {
		t.Error("negative -floor accepted")
	}
}
