package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// sampleOutput is a trimmed, representative `go test -bench` stream:
// two packages, custom metrics, a sub-benchmark, and trailer noise.
const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkFig1Lenox-8                   	       1	47307636 ns/op	        12.35 docker_overhead_pct
BenchmarkAblationPlacement/block-8     	       2	 5010203 ns/op	         0.375 sim_s/step
PASS
ok  	repro	12.345s
pkg: repro/internal/vtime
BenchmarkPingPongSync-8                	  300000	       441.0 ns/op	       220.5 ns/switch
ok  	repro/internal/vtime	0.5s
`

func TestParseBenchOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader(sampleOutput), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3:\n%s", len(rep.Benchmarks), sb.String())
	}

	fig1 := rep.Benchmarks[0]
	if fig1.Name != "BenchmarkFig1Lenox-8" || fig1.Pkg != "repro" {
		t.Fatalf("first benchmark misparsed: %+v", fig1)
	}
	if fig1.Iterations != 1 || fig1.NsPerOp != 47307636 {
		t.Fatalf("fig1 numbers misparsed: %+v", fig1)
	}
	if fig1.Metrics["docker_overhead_pct"] != 12.35 {
		t.Fatalf("fig1 custom metric lost: %+v", fig1.Metrics)
	}

	sub := rep.Benchmarks[1]
	if sub.Name != "BenchmarkAblationPlacement/block-8" || sub.Metrics["sim_s/step"] != 0.375 {
		t.Fatalf("sub-benchmark misparsed: %+v", sub)
	}

	pp := rep.Benchmarks[2]
	if pp.Pkg != "repro/internal/vtime" {
		t.Fatalf("package header not tracked across packages: %+v", pp)
	}
	if pp.NsPerOp != 441.0 || pp.Metrics["ns/switch"] != 220.5 {
		t.Fatalf("vtime metrics misparsed: %+v", pp)
	}
}

func TestParseEmptyAndNoise(t *testing.T) {
	var sb strings.Builder
	noise := "PASS\nok  \trepro\t1.0s\nBenchmarkBroken\n--- FAIL: TestX\n"
	if err := run(strings.NewReader(noise), &sb); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
	if !strings.Contains(sb.String(), `"benchmarks": []`) {
		t.Fatalf("empty report must keep an empty array, got:\n%s", sb.String())
	}
}
